#include "des/bandwidth.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace lobster::des {

namespace {
// Flows are considered finished when less than this many bytes remain;
// absorbs floating-point residue from rate * dt integration.
constexpr double kEpsilonBytes = 1e-6;
}  // namespace

BandwidthLink::BandwidthLink(Simulation& sim, double capacity_bytes_per_s)
    : sim_(sim), capacity_(capacity_bytes_per_s) {
  if (capacity_ < 0.0)
    throw std::invalid_argument("BandwidthLink: negative capacity");
}

void BandwidthLink::set_capacity(double bytes_per_s) {
  if (bytes_per_s < 0.0)
    throw std::invalid_argument("BandwidthLink: negative capacity");
  advance();
  capacity_ = bytes_per_s;
  recompute_rates();
  reschedule();
}

double BandwidthLink::bytes_moved() const {
  double partial = 0.0;
  for (const Flow& f : flows_) partial += f.total - f.remaining;
  // NB: callers that need an exact instantaneous figure should be aware the
  // in-flight component is integrated up to last_update_ only.
  return completed_bytes_ + partial;
}

double BandwidthLink::allocated_rate() const {
  double sum = 0.0;
  for (const Flow& f : flows_) sum += f.rate;
  return sum;
}

std::shared_ptr<Event> BandwidthLink::start_flow(double bytes,
                                                 double rate_cap) {
  if (rate_cap <= 0.0)
    throw std::invalid_argument("BandwidthLink: rate cap must be positive");
  auto done = std::make_shared<Event>(sim_);
  advance();
  Flow f;
  f.id = next_id_++;
  f.total = bytes;
  f.remaining = bytes;
  f.cap = rate_cap;
  f.done = done;
  flows_.push_back(std::move(f));  // ids are monotone: order stays sorted
  recompute_rates();
  reschedule();
  return done;
}

void BandwidthLink::advance() {
  const double now = sim_.now();
  const double dt = now - last_update_;
  last_update_ = now;
  // The completion sweep must run even when dt == 0: a flow whose residual
  // is below one time ulp would otherwise reschedule at the same timestamp
  // forever (zero-advance event storm).
  // Stable compaction in flow-id order: completions trigger in the same
  // order the std::map walk produced, so event sequence numbers (and
  // therefore every downstream golden) are unchanged.
  std::size_t out = 0;
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    Flow& f = flows_[i];
    if (dt > 0.0) f.remaining = std::max(0.0, f.remaining - f.rate * dt);
    // Relative epsilon: large transfers accumulate proportionally larger
    // floating-point residue.
    const double eps = std::max(kEpsilonBytes, 1e-12 * f.total);
    if (f.remaining <= eps) {
      completed_bytes_ += f.total;
      f.done->trigger();
    } else {
      if (out != i) flows_[out] = std::move(f);
      ++out;
    }
  }
  flows_.resize(out);
}

void BandwidthLink::recompute_rates() {
  // Water-filling: flows whose cap is below the fair share get their cap;
  // the leftover is shared equally among the rest.  Iterate until stable.
  std::vector<Flow*> unassigned;
  unassigned.reserve(flows_.size());
  for (Flow& f : flows_) {
    f.rate = 0.0;
    unassigned.push_back(&f);
  }
  double remaining_capacity = capacity_;
  bool changed = true;
  while (changed && !unassigned.empty() && remaining_capacity > 0.0) {
    changed = false;
    const double fair =
        remaining_capacity / static_cast<double>(unassigned.size());
    for (std::size_t i = 0; i < unassigned.size();) {
      if (unassigned[i]->cap <= fair) {
        unassigned[i]->rate = unassigned[i]->cap;
        remaining_capacity -= unassigned[i]->cap;
        unassigned[i] = unassigned.back();
        unassigned.pop_back();
        changed = true;
      } else {
        ++i;
      }
    }
  }
  if (!unassigned.empty() && remaining_capacity > 0.0) {
    const double fair =
        remaining_capacity / static_cast<double>(unassigned.size());
    for (Flow* f : unassigned) f->rate = fair;
  }
}

void BandwidthLink::reschedule() {
  const std::uint64_t gen = ++gen_;
  double min_dt = std::numeric_limits<double>::infinity();
  for (const Flow& f : flows_)
    if (f.rate > 0.0) min_dt = std::min(min_dt, f.remaining / f.rate);
  if (!std::isfinite(min_dt)) return;  // link down or no flows
  // Guarantee strict time progress: a delay below one ulp of now() would
  // fire at the same timestamp and make no headway.
  const double now = sim_.now();
  if (now + min_dt <= now)
    min_dt = std::nextafter(now, std::numeric_limits<double>::infinity()) -
             now;
  sim_.schedule(min_dt, [this, gen] { on_timer(gen); });
}

void BandwidthLink::on_timer(std::uint64_t gen) {
  if (gen != gen_) return;  // superseded by a later topology change
  advance();
  recompute_rates();
  reschedule();
}

}  // namespace lobster::des

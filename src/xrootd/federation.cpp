#include "xrootd/federation.hpp"

#include <algorithm>
#include <limits>

namespace lobster::xrootd {

void RedirectorTable::add_replica(const std::string& lfn,
                                  const std::string& site) {
  if (lfn.empty() || site.empty())
    throw std::invalid_argument("redirector: empty lfn or site");
  replicas_[lfn].push_back(site);
}

std::vector<std::string> RedirectorTable::locate(const std::string& lfn) const {
  const auto it = replicas_.find(lfn);
  if (it == replicas_.end()) return {};
  return it->second;
}

std::optional<std::string> RedirectorTable::pick(const std::string& lfn) {
  const auto it = replicas_.find(lfn);
  if (it == replicas_.end() || it->second.empty()) return std::nullopt;
  const std::size_t i = next_[lfn]++ % it->second.size();
  return it->second[i];
}

FederationSim::FederationSim(des::Simulation& sim, const Params& params)
    : sim_(sim),
      params_(params),
      uplink_(sim, params.campus_uplink_rate),
      ctr_streams_(&sim.counters().counter("xrootd.federation.streams")),
      ctr_stages_(&sim.counters().counter("xrootd.federation.stages")),
      ctr_failed_opens_(&sim.counters().counter("xrootd.federation.failed_opens")),
      ctr_outages_(&sim.counters().counter("xrootd.federation.outages")),
      ctr_bytes_streamed_(&sim.counters().gauge("xrootd.federation.bytes_streamed")),
      ctr_bytes_staged_(&sim.counters().gauge("xrootd.federation.bytes_staged")) {
  if (!params_.paths.empty()) {
    if (params_.trunks.empty())
      throw std::invalid_argument("federation: paths require trunks");
    for (const Params::Trunk& t : params_.trunks) {
      if (t.rate <= 0.0)
        throw std::invalid_argument("federation: bad trunk rate");
      trunk_links_.push_back(std::make_unique<des::BandwidthLink>(sim, t.rate));
    }
    for (const Params::Path& p : params_.paths) {
      if (p.uplink_rate <= 0.0 || p.trunk >= params_.trunks.size())
        throw std::invalid_argument("federation: bad path");
      path_links_.push_back(
          std::make_unique<des::BandwidthLink>(sim, p.uplink_rate));
    }
    path_outage_depth_.assign(params_.paths.size(), 0);
    path_epoch_.assign(params_.paths.size(), 0);
    path_bytes_.assign(params_.paths.size(), 0.0);
  }
}

bool FederationSim::path_down(std::size_t path) const {
  return outage_depth_ > 0 || path_outage_depth_[path] > 0;
}

void FederationSim::schedule_outage(double start, double duration) {
  if (start < 0.0 || duration <= 0.0)
    throw std::invalid_argument("federation: bad outage window");
  sim_.schedule(start, [this] {
    ++outage_counter_;
    ctr_outages_->add();
    sim_.tracer().instant("xrootd", "outage_begin");
    if (outage_depth_++ == 0) {
      uplink_.set_capacity(0.0);
      // Global event: every site uplink drops (a path already down from
      // its own outage stays at zero either way).
      for (std::size_t i = 0; i < path_links_.size(); ++i)
        path_links_[i]->set_capacity(0.0);
    }
  });
  sim_.schedule(start + duration, [this] {
    if (--outage_depth_ == 0) {
      uplink_.set_capacity(params_.campus_uplink_rate);
      for (std::size_t i = 0; i < path_links_.size(); ++i)
        if (path_outage_depth_[i] == 0)
          path_links_[i]->set_capacity(params_.paths[i].uplink_rate);
      sim_.tracer().instant("xrootd", "outage_end");
    }
  });
}

void FederationSim::schedule_path_outage(std::size_t path, double start,
                                         double duration) {
  if (path >= path_links_.size())
    throw std::invalid_argument("federation: path outage on unknown path");
  if (start < 0.0 || duration <= 0.0)
    throw std::invalid_argument("federation: bad outage window");
  sim_.schedule(start, [this, path] {
    ++path_epoch_[path];  // streams in flight on this path break
    sim_.tracer().instant("xrootd", "path_outage_begin");
    if (path_outage_depth_[path]++ == 0 && outage_depth_ == 0)
      path_links_[path]->set_capacity(0.0);
  });
  sim_.schedule(start + duration, [this, path] {
    if (--path_outage_depth_[path] == 0 && outage_depth_ == 0) {
      path_links_[path]->set_capacity(params_.paths[path].uplink_rate);
      sim_.tracer().instant("xrootd", "path_outage_end");
    }
  });
}

std::size_t FederationSim::pick_path() const {
  const std::size_t n = path_links_.size();
  if (params_.path_policy == PathPolicy::FirstAvailable) {
    for (std::size_t i = 0; i < n; ++i)
      if (!path_down(i)) return i;
    return n;
  }
  // LeastLoaded: rank by the most-loaded hop.  Load is estimated as
  // per_stream_rate * active_flows / capacity rather than the solved
  // allocation — active_flows() updates the moment a flow joins, so a
  // same-timestamp dispatch burst spreads across paths instead of piling
  // onto whichever looked empty at the last solve; past saturation the
  // same figure ranks paths by queue depth.  Ties go to the lowest index.
  std::size_t best = n;
  const double inf = std::numeric_limits<double>::infinity();
  std::pair<double, double> best_load{inf, inf};
  const auto load = [this](const des::BandwidthLink& l) {
    if (l.capacity() <= 0.0) return std::numeric_limits<double>::infinity();
    return params_.per_stream_rate * static_cast<double>(l.active_flows()) /
           l.capacity();
  };
  for (std::size_t i = 0; i < n; ++i) {
    if (path_down(i)) continue;
    const double up = load(*path_links_[i]);
    // Primary key: the most-loaded hop.  Secondary: the site uplink alone —
    // a shared trunk contributes the same load to every path feeding it,
    // so without the tiebreak a saturated trunk would pin every pick to
    // the lowest index.
    const std::pair<double, double> u{
        std::max(up, load(*trunk_links_[params_.paths[i].trunk])), up};
    if (u < best_load) {
      best_load = u;
      best = i;
    }
  }
  return best;
}

des::Task<double> FederationSim::transfer(double bytes, double& accounting,
                                          util::Gauge* volume) {
  const double t0 = sim_.now();
  if (path_links_.empty()) {
    // Legacy single shared uplink — unchanged, bit-identical.
    if (outage_active()) {
      ++failed_opens_;
      ctr_failed_opens_->add();
      co_await sim_.delay(params_.open_fail_delay);
      throw AccessError("xrootd: open failed (wide-area outage)");
    }
    const std::uint64_t epoch = outage_counter_;
    co_await sim_.delay(params_.open_latency);
    co_await uplink_.transfer(bytes, params_.per_stream_rate);
    if (outage_counter_ != epoch) {
      // An outage began while this stream was in flight: the connection
      // broke, and the fluid-model bytes that trickled through are moot —
      // the task sees a read error after the stall.
      throw AccessError("xrootd: stream broken by wide-area outage");
    }
    accounting += bytes;
    volume->add(bytes);
    co_return sim_.now() - t0;
  }
  // Multi-path: the redirector picks a site per the policy; the stream
  // occupies that site's uplink AND its shared WAN trunk simultaneously and
  // completes when the slower hop drains (fluid series approximation —
  // each hop max-min-shares its own capacity among the flows crossing it).
  const std::size_t p = pick_path();
  if (p == path_links_.size()) {
    ++failed_opens_;
    ctr_failed_opens_->add();
    co_await sim_.delay(params_.open_fail_delay);
    throw AccessError("xrootd: open failed (all paths down)");
  }
  const std::uint64_t epoch = outage_counter_ + path_epoch_[p];
  co_await sim_.delay(params_.open_latency);
  auto up_done =
      path_links_[p]->start_flow(bytes, params_.per_stream_rate);
  auto trunk_done = trunk_links_[params_.paths[p].trunk]->start_flow(
      bytes, params_.per_stream_rate);
  co_await *up_done;
  co_await *trunk_done;
  if (outage_counter_ + path_epoch_[p] != epoch)
    throw AccessError("xrootd: stream broken by path outage");
  accounting += bytes;
  volume->add(bytes);
  path_bytes_[p] += bytes;
  co_return sim_.now() - t0;
}

des::Task<double> FederationSim::stream(double bytes) {
  ctr_streams_->add();
  return transfer(bytes, bytes_streamed_, ctr_bytes_streamed_);
}

des::Task<double> FederationSim::stage(double bytes) {
  ctr_stages_->add();
  return transfer(bytes, bytes_staged_, ctr_bytes_staged_);
}

void SiteStore::put(const std::string& lfn, double bytes) {
  if (bytes < 0.0) throw std::invalid_argument("site: negative size");
  files_[lfn] = bytes;
}

bool SiteStore::has(const std::string& lfn) const {
  return files_.count(lfn) > 0;
}

double SiteStore::open(const std::string& lfn) const {
  const auto it = files_.find(lfn);
  if (it == files_.end())
    throw AccessError("xrootd: " + name_ + " has no replica of " + lfn);
  return it->second;
}

void Client::attach_site(std::shared_ptr<SiteStore> site) {
  sites_[site->name()] = std::move(site);
}

std::pair<std::string, double> Client::read(const std::string& lfn) {
  const auto site = redirector_->pick(lfn);
  if (!site) throw AccessError("xrootd: no replica registered for " + lfn);
  const auto it = sites_.find(*site);
  if (it == sites_.end())
    throw AccessError("xrootd: site " + *site + " not attached");
  return {*site, it->second->open(lfn)};
}

}  // namespace lobster::xrootd

#include "xrootd/federation.hpp"

namespace lobster::xrootd {

void RedirectorTable::add_replica(const std::string& lfn,
                                  const std::string& site) {
  if (lfn.empty() || site.empty())
    throw std::invalid_argument("redirector: empty lfn or site");
  replicas_[lfn].push_back(site);
}

std::vector<std::string> RedirectorTable::locate(const std::string& lfn) const {
  const auto it = replicas_.find(lfn);
  if (it == replicas_.end()) return {};
  return it->second;
}

std::optional<std::string> RedirectorTable::pick(const std::string& lfn) {
  const auto it = replicas_.find(lfn);
  if (it == replicas_.end() || it->second.empty()) return std::nullopt;
  const std::size_t i = next_[lfn]++ % it->second.size();
  return it->second[i];
}

FederationSim::FederationSim(des::Simulation& sim, const Params& params)
    : sim_(sim),
      params_(params),
      uplink_(sim, params.campus_uplink_rate),
      ctr_streams_(&sim.counters().counter("xrootd.streams")),
      ctr_stages_(&sim.counters().counter("xrootd.stages")),
      ctr_failed_opens_(&sim.counters().counter("xrootd.failed_opens")),
      ctr_outages_(&sim.counters().counter("xrootd.outages")),
      ctr_bytes_streamed_(&sim.counters().gauge("xrootd.bytes_streamed")),
      ctr_bytes_staged_(&sim.counters().gauge("xrootd.bytes_staged")) {}

void FederationSim::schedule_outage(double start, double duration) {
  if (start < 0.0 || duration <= 0.0)
    throw std::invalid_argument("federation: bad outage window");
  sim_.schedule(start, [this] {
    ++outage_counter_;
    ctr_outages_->add();
    sim_.tracer().instant("xrootd", "outage_begin");
    if (outage_depth_++ == 0) uplink_.set_capacity(0.0);
  });
  sim_.schedule(start + duration, [this] {
    if (--outage_depth_ == 0) {
      uplink_.set_capacity(params_.campus_uplink_rate);
      sim_.tracer().instant("xrootd", "outage_end");
    }
  });
}

des::Task<double> FederationSim::transfer(double bytes, double& accounting,
                                          util::Gauge* volume) {
  const double t0 = sim_.now();
  if (outage_active()) {
    ++failed_opens_;
    ctr_failed_opens_->add();
    co_await sim_.delay(params_.open_fail_delay);
    throw AccessError("xrootd: open failed (wide-area outage)");
  }
  const std::uint64_t epoch = outage_counter_;
  co_await sim_.delay(params_.open_latency);
  co_await uplink_.transfer(bytes, params_.per_stream_rate);
  if (outage_counter_ != epoch) {
    // An outage began while this stream was in flight: the connection
    // broke, and the fluid-model bytes that trickled through are moot —
    // the task sees a read error after the stall.
    throw AccessError("xrootd: stream broken by wide-area outage");
  }
  accounting += bytes;
  volume->add(bytes);
  co_return sim_.now() - t0;
}

des::Task<double> FederationSim::stream(double bytes) {
  ctr_streams_->add();
  return transfer(bytes, bytes_streamed_, ctr_bytes_streamed_);
}

des::Task<double> FederationSim::stage(double bytes) {
  ctr_stages_->add();
  return transfer(bytes, bytes_staged_, ctr_bytes_staged_);
}

void SiteStore::put(const std::string& lfn, double bytes) {
  if (bytes < 0.0) throw std::invalid_argument("site: negative size");
  files_[lfn] = bytes;
}

bool SiteStore::has(const std::string& lfn) const {
  return files_.count(lfn) > 0;
}

double SiteStore::open(const std::string& lfn) const {
  const auto it = files_.find(lfn);
  if (it == files_.end())
    throw AccessError("xrootd: " + name_ + " has no replica of " + lfn);
  return it->second;
}

void Client::attach_site(std::shared_ptr<SiteStore> site) {
  sites_[site->name()] = std::move(site);
}

std::pair<std::string, double> Client::read(const std::string& lfn) {
  const auto site = redirector_->pick(lfn);
  if (!site) throw AccessError("xrootd: no replica registered for " + lfn);
  const auto it = sites_.find(*site);
  if (it == sites_.end())
    throw AccessError("xrootd: site " + *site + " not attached");
  return {*site, it->second->open(lfn)};
}

}  // namespace lobster::xrootd

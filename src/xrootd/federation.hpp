// federation.hpp — the "Any Data, Anytime, Anywhere" (AAA) data federation
// (paper §2, §4.2) built on the XrootD access model:
//
//   * a redirector maps a logical file name (LFN) to the physical site(s)
//     holding replicas;
//   * jobs on opportunistic resources *stream* input data over the WAN from
//     those sites, or *stage* whole files in before running;
//   * every byte crosses the shared campus uplink — 10 Gbit/s at Notre Dame,
//     fully saturated during the Figure 10 data processing run;
//   * the wide-area path suffers transient outages (the failure burst in
//     the middle of Figure 10).
//
// FederationSim is the DES model used at 10k-core scale; RedirectorTable is
// the real lookup structure shared by both the model and the in-process
// client used by the wq:: runtime examples.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "des/bandwidth.hpp"
#include "des/simulation.hpp"
#include "des/task.hpp"
#include "util/rng.hpp"

namespace lobster::xrootd {

/// Replica location lookup: LFN -> site names.  Deterministic: queries pick
/// replicas round-robin per LFN.
class RedirectorTable {
 public:
  void add_replica(const std::string& lfn, const std::string& site);
  /// All sites holding the file (empty when unknown).
  std::vector<std::string> locate(const std::string& lfn) const;
  /// Pick one replica (round-robin across calls); nullopt when unknown.
  std::optional<std::string> pick(const std::string& lfn);
  [[nodiscard]] std::size_t num_files() const { return replicas_.size(); }

 private:
  std::map<std::string, std::vector<std::string>> replicas_;
  std::map<std::string, std::size_t> next_;
};

/// Thrown when a file is opened while the wide-area path is down, or the
/// LFN is unknown to the redirector.
struct AccessError : std::runtime_error {
  explicit AccessError(const std::string& what) : std::runtime_error(what) {}
};

/// How the redirector chooses among multiple wide-area paths.
enum class PathPolicy {
  /// Pick the path whose most-loaded hop (uplink or trunk) has the lowest
  /// utilization; skip paths that are down.  The sensible default.
  LeastLoaded,
  /// Always pick the first path that is up.  Deliberately naive: models the
  /// redirector-hotspot failure mode (every client piles onto one site
  /// while the others idle) exercised by bench/fig16_200gbps_ramp.
  FirstAvailable,
};

/// DES model of the federation as seen from one campus.
class FederationSim {
 public:
  struct Params {
    /// Shared campus uplink (all WAN transfers contend here).
    double campus_uplink_rate = 1.25e9;  // 10 Gbit/s
    /// Per-flow ceiling (server/TCP stream limit).
    double per_stream_rate = 3.0e7;  // ~30 MB/s per stream
    /// Redirector lookup + TCP/auth setup per open.
    double open_latency = 1.0;
    /// When a file is opened during an outage the client errors out after
    /// this long instead of hanging.
    double open_fail_delay = 30.0;

    /// Multi-path topology (200 Gbps data plane).  When `paths` is empty
    /// the federation behaves exactly as the legacy single shared uplink
    /// above — bit-identical, no extra links are created.  Otherwise every
    /// transfer picks a path per `path_policy` and occupies both the
    /// path's site uplink and its shared WAN trunk; completion waits for
    /// the slowest hop (fluid series approximation).
    struct Trunk {
      std::string name;
      double rate = 0.0;  // bytes/s
    };
    struct Path {
      std::string name;
      double uplink_rate = 0.0;       // bytes/s, this site's uplink
      std::size_t trunk = 0;          // index into `trunks`
    };
    std::vector<Trunk> trunks;
    std::vector<Path> paths;
    PathPolicy path_policy = PathPolicy::LeastLoaded;
  };

  FederationSim(des::Simulation& sim, const Params& params);

  /// Declare an outage window [start, start+duration): opens fail, and
  /// transfers in flight when the outage begins error out once the network
  /// path unblocks (the TCP streams broke — their tasks lose the work).
  /// In multi-path mode this is a global event: every site uplink drops.
  void schedule_outage(double start, double duration);
  /// Collapse one site's uplink for [start, start+duration): streams on
  /// that path break, opens re-route to surviving paths.  Multi-path only.
  void schedule_path_outage(std::size_t path, double start, double duration);
  bool outage_active() const { return outage_depth_ > 0; }
  bool path_down(std::size_t path) const;
  std::uint64_t outages_started() const { return outage_counter_; }

  /// Stream `bytes` into a running task.  Models read-as-you-go access: the
  /// transfer shares the campus uplink, capped per stream.  Returns wall
  /// time spent streaming.  Throws AccessError when opened during an
  /// outage.
  des::Task<double> stream(double bytes);

  /// Stage a whole file before execution (WQ / Chirp modes pay this up
  /// front).  Identical network path; kept separate for accounting.
  des::Task<double> stage(double bytes);

  des::BandwidthLink& uplink() { return uplink_; }
  [[nodiscard]] double bytes_streamed() const { return bytes_streamed_; }
  [[nodiscard]] double bytes_staged() const { return bytes_staged_; }
  std::uint64_t failed_opens() const { return failed_opens_; }

  // Multi-path accessors (num_paths() == 0 in legacy mode).
  [[nodiscard]] std::size_t num_paths() const { return path_links_.size(); }
  des::BandwidthLink& path_link(std::size_t i) { return *path_links_[i]; }
  des::BandwidthLink& trunk_link(std::size_t i) { return *trunk_links_[i]; }
  const std::string& path_name(std::size_t i) const {
    return params_.paths[i].name;
  }
  /// Bytes delivered over path i (streams + stages), for per-site
  /// throughput breakdowns.
  [[nodiscard]] double path_bytes(std::size_t i) const {
    return path_bytes_[i];
  }

 private:
  des::Task<double> transfer(double bytes, double& accounting,
                             util::Gauge* volume);
  /// Choose a path per the configured policy; num_paths() when all down.
  std::size_t pick_path() const;

  des::Simulation& sim_;
  Params params_;
  des::BandwidthLink uplink_;
  // Multi-path plumbing: one uplink per site path plus the shared trunks
  // they feed (unique_ptr: BandwidthLink is non-movable).
  std::vector<std::unique_ptr<des::BandwidthLink>> path_links_;
  std::vector<std::unique_ptr<des::BandwidthLink>> trunk_links_;
  std::vector<int> path_outage_depth_;
  std::vector<std::uint64_t> path_epoch_;
  std::vector<double> path_bytes_;
  int outage_depth_ = 0;
  std::uint64_t outage_counter_ = 0;
  double bytes_streamed_ = 0.0;
  double bytes_staged_ = 0.0;
  std::uint64_t failed_opens_ = 0;
  // Unified counter plane (xrootd.*).
  util::Counter* ctr_streams_;
  util::Counter* ctr_stages_;
  util::Counter* ctr_failed_opens_;
  util::Counter* ctr_outages_;
  util::Gauge* ctr_bytes_streamed_;
  util::Gauge* ctr_bytes_staged_;
};

// ---------------------------------------------------------------------------
// Real in-process federation (used by the thread-based wq:: runtime and the
// examples): an in-memory replica store behind the same redirector lookup.
// ---------------------------------------------------------------------------

/// A site's storage: LFN -> deterministic content token (size + digest).
class SiteStore {
 public:
  explicit SiteStore(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void put(const std::string& lfn, double bytes);
  bool has(const std::string& lfn) const;
  /// Size in bytes; throws AccessError when absent.
  double open(const std::string& lfn) const;

 private:
  std::string name_;
  std::map<std::string, double> files_;
};

/// Client facade: locate via the redirector, read from the chosen site.
class Client {
 public:
  explicit Client(RedirectorTable& redirector) : redirector_(&redirector) {}

  void attach_site(std::shared_ptr<SiteStore> site);
  /// Resolve and "read" an LFN; returns (site, bytes).  Throws AccessError
  /// when no replica is registered or the site store lacks the file.
  std::pair<std::string, double> read(const std::string& lfn);

 private:
  RedirectorTable* redirector_;
  std::map<std::string, std::shared_ptr<SiteStore>> sites_;
};

}  // namespace lobster::xrootd

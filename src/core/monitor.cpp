#include "core/monitor.hpp"

#include <algorithm>

namespace lobster::core {

Monitor::Monitor(double bin_seconds)
    : bin_(bin_seconds),
      completed_(0.0, bin_seconds),
      failed_(0.0, bin_seconds),
      running_(0.0, bin_seconds),
      cpu_in_bin_(0.0, bin_seconds),
      wall_in_bin_(0.0, bin_seconds),
      setup_in_bin_(0.0, bin_seconds),
      setup_count_(0.0, bin_seconds),
      stageout_in_bin_(0.0, bin_seconds),
      stageout_count_(0.0, bin_seconds) {}

void Monitor::on_task_finished(const TaskRecord& rec) {
  ++seen_;
  const double t = rec.finish_time;
  const double* seg = rec.segment_time;
  const double wall_all =
      seg[static_cast<std::size_t>(Segment::Dispatch)] +
      seg[static_cast<std::size_t>(Segment::EnvSetup)] +
      seg[static_cast<std::size_t>(Segment::StageIn)] +
      seg[static_cast<std::size_t>(Segment::Execute)] +
      seg[static_cast<std::size_t>(Segment::ExecuteIo)] +
      seg[static_cast<std::size_t>(Segment::StageOut)] +
      seg[static_cast<std::size_t>(Segment::Cleanup)] + rec.lost_time;

  if (rec.status == TaskStatus::Failed || rec.status == TaskStatus::Evicted) {
    if (rec.status == TaskStatus::Failed) {
      ++failures_;
      breakdown_.hard_failed += wall_all;
    } else {
      ++evictions_;
    }
    failed_.add(t);
    // All wall time of a failed/evicted task is charged to "Task Failed" —
    // the Figure 8 accounting.
    breakdown_.failed += wall_all;
    lost_ += rec.lost_time;
    dispatch_ += seg[static_cast<std::size_t>(Segment::Dispatch)];
    return;
  }

  completed_.add(t);
  breakdown_.cpu += rec.cpu_time;
  breakdown_.io +=
      seg[static_cast<std::size_t>(Segment::ExecuteIo)] +
      std::max(0.0, seg[static_cast<std::size_t>(Segment::Execute)] -
                        rec.cpu_time);
  breakdown_.stage_in += seg[static_cast<std::size_t>(Segment::StageIn)];
  breakdown_.stage_out += seg[static_cast<std::size_t>(Segment::StageOut)];
  breakdown_.other += seg[static_cast<std::size_t>(Segment::Dispatch)] +
                      seg[static_cast<std::size_t>(Segment::EnvSetup)] +
                      seg[static_cast<std::size_t>(Segment::Cleanup)] +
                      rec.lost_time;
  lost_ += rec.lost_time;
  dispatch_ += seg[static_cast<std::size_t>(Segment::Dispatch)];

  cpu_in_bin_.add(t, rec.cpu_time);
  wall_in_bin_.add(t, wall_all);
  setup_in_bin_.add(t, seg[static_cast<std::size_t>(Segment::EnvSetup)]);
  setup_count_.add(t, 1.0);
  stageout_in_bin_.add(t, seg[static_cast<std::size_t>(Segment::StageOut)]);
  stageout_count_.add(t, 1.0);
}

void Monitor::sample_running(double now, std::size_t running) {
  running_.sample(now, static_cast<double>(running));
}

std::vector<double> Monitor::efficiency_timeline() const {
  std::vector<double> out(wall_in_bin_.nbins(), 0.0);
  for (std::size_t i = 0; i < out.size(); ++i) {
    const double wall = wall_in_bin_.sum(i);
    out[i] = wall > 0.0 ? cpu_in_bin_.sum(i) / wall : 0.0;
  }
  return out;
}

namespace {
std::vector<double> per_bin_mean(const util::TimeSeries& sum,
                                 const util::TimeSeries& count) {
  std::vector<double> out(sum.nbins(), 0.0);
  for (std::size_t i = 0; i < out.size(); ++i) {
    const double n = count.sum(i);
    out[i] = n > 0.0 ? sum.sum(i) / n : 0.0;
  }
  return out;
}
}  // namespace

std::vector<double> Monitor::setup_time_timeline() const {
  return per_bin_mean(setup_in_bin_, setup_count_);
}

std::vector<double> Monitor::stageout_time_timeline() const {
  return per_bin_mean(stageout_in_bin_, stageout_count_);
}

const char* to_string(DiagnosisRule r) {
  switch (r) {
    case DiagnosisRule::LostRuntime: return "lost_runtime";
    case DiagnosisRule::DispatchWait: return "dispatch_wait";
    case DiagnosisRule::SetupTime: return "setup_time";
    case DiagnosisRule::Staging: return "staging";
    case DiagnosisRule::FailureBurst: return "failure_burst";
  }
  return "?";
}

std::vector<Diagnosis> diagnose_breakdown(const RuntimeBreakdown& breakdown,
                                          double lost, double dispatch,
                                          const AdvisorThresholds& th) {
  std::vector<Diagnosis> out;
  const double total = breakdown.total();
  if (total <= 0.0) return out;

  auto severity = [](double value, double threshold) {
    return std::min(1.0, (value - threshold) / std::max(threshold, 1e-9));
  };

  const double lost_frac = lost / total;
  if (lost_frac > th.lost_fraction)
    out.push_back(
        {"high lost runtime (" + std::to_string(lost_frac) + " of wall)",
         "target task size is too high: eviction limits the available "
         "computation time — reduce tasklets per task",
         severity(lost_frac, th.lost_fraction), DiagnosisRule::LostRuntime});

  const double dispatch_frac = dispatch / total;
  if (dispatch_frac > th.dispatch_fraction)
    out.push_back(
        {"long sandbox stage-in / dispatch wait (" +
             std::to_string(dispatch_frac) + " of wall)",
         "use more foremen to spread the load of sending out the sandbox",
         severity(dispatch_frac, th.dispatch_fraction),
         DiagnosisRule::DispatchWait});

  const double setup_frac =
      (breakdown.other > 0.0 ? breakdown.other : 0.0) / total;
  if (setup_frac > th.setup_fraction)
    out.push_back(
        {"consistently long setup times (" + std::to_string(setup_frac) +
             " of wall)",
         "squid proxy overloaded: increase cores per worker (shared cache) "
         "or deploy more proxies",
         severity(setup_frac, th.setup_fraction), DiagnosisRule::SetupTime});

  const double staging_frac =
      (breakdown.stage_in + breakdown.stage_out) / total;
  if (staging_frac > th.staging_fraction)
    out.push_back(
        {"increased stage-in and stage-out times (" +
             std::to_string(staging_frac) + " of wall)",
         "Chirp server overloaded: adjust the number of concurrent "
         "connections permitted",
         severity(staging_frac, th.staging_fraction), DiagnosisRule::Staging});

  // Hard failures only: evictions are the expected opportunistic climate,
  // not an infrastructure symptom.
  const double failed_frac = breakdown.hard_failed / total;
  if (failed_frac > th.failed_fraction)
    out.push_back(
        {"transient failure burst (" + std::to_string(failed_frac) +
             " of wall in failed tasks)",
         "infrastructure outage suspected: throttle dispatch to probe rate "
         "until the failure rate recovers",
         severity(failed_frac, th.failed_fraction),
         DiagnosisRule::FailureBurst});

  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.severity > b.severity;
  });
  return out;
}

std::vector<Diagnosis> Monitor::diagnose(const AdvisorThresholds& th) const {
  return diagnose_breakdown(breakdown_, lost_, dispatch_, th);
}

}  // namespace lobster::core

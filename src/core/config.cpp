#include "core/config.hpp"

#include <stdexcept>

namespace lobster::core {

const char* to_string(DataAccessMode m) {
  switch (m) {
    case DataAccessMode::Stream: return "stream";
    case DataAccessMode::Stage: return "stage";
  }
  return "?";
}

WorkflowConfig WorkflowConfig::from_config(const util::Config& cfg,
                                           const std::string& section) {
  WorkflowConfig out;
  out.label = cfg.get_string(section, "label", out.label);
  out.dataset = cfg.get_string(section, "dataset", out.dataset);
  out.lumis_per_tasklet = static_cast<std::uint32_t>(
      cfg.get_int(section, "lumis_per_tasklet", out.lumis_per_tasklet));
  out.tasklets_per_task = static_cast<std::uint32_t>(
      cfg.get_int(section, "tasklets_per_task", out.tasklets_per_task));
  out.task_buffer = static_cast<std::size_t>(
      cfg.get_int(section, "task_buffer",
                  static_cast<std::int64_t>(out.task_buffer)));
  out.max_attempts = static_cast<std::uint32_t>(
      cfg.get_int(section, "max_attempts", out.max_attempts));
  out.output_ratio = cfg.get_double(section, "output_ratio", out.output_ratio);
  out.adaptive_sizing =
      cfg.get_bool(section, "adaptive_sizing", out.adaptive_sizing);
  out.merge_policy.target_bytes =
      cfg.get_size(section, "merge_size", out.merge_policy.target_bytes);

  const std::string access = cfg.get_string(section, "access", "stream");
  if (access == "stream")
    out.access = DataAccessMode::Stream;
  else if (access == "stage")
    out.access = DataAccessMode::Stage;
  else
    throw std::runtime_error("config: unknown access mode '" + access + "'");

  const std::string merge = cfg.get_string(section, "merge", "interleaved");
  if (merge == "interleaved")
    out.merge_mode = MergeMode::Interleaved;
  else if (merge == "sequential")
    out.merge_mode = MergeMode::Sequential;
  else if (merge == "hadoop")
    out.merge_mode = MergeMode::Hadoop;
  else
    throw std::runtime_error("config: unknown merge mode '" + merge + "'");

  if (out.tasklets_per_task == 0)
    throw std::runtime_error("config: tasklets_per_task must be > 0");
  if (out.task_buffer == 0)
    throw std::runtime_error("config: task_buffer must be > 0");
  return out;
}

}  // namespace lobster::core

// db.hpp — the Lobster DB (paper §3, §5): "The main Lobster process creates
// a local SQLite database which persistently records the mapping from
// tasklets to tasks. ... All of these records are stored in the Lobster DB,
// so that it becomes easy to generate histograms and time lines showing the
// distribution of behavior at each stage of the execution."
//
// SQLite is replaced by an embedded store with the same roles:
//  * tasklet table   — status, attempts, owning task;
//  * task table      — tasklet membership, worker, per-segment timings,
//    exit code, eviction flag;
//  * output table    — produced files (size, merged-into);
//  * append-only JSONL journal for persistence, replayable at startup
//    (the paper's footnote: "system state is quickly and automatically
//    recovered if the scheduler node should crash and reboot").
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/workflow.hpp"
#include "util/histogram.hpp"

namespace lobster::core {

/// The wrapper's logical segments (paper §5: "the wrapper script that runs
/// every user task is heavily instrumented ... broken down into logical
/// segments").
enum class Segment : std::uint8_t {
  Dispatch = 0,   ///< master-side queue wait + send
  EnvSetup,       ///< machine check + CVMFS/Parrot environment
  StageIn,        ///< input transfer (staging modes) / stream open
  Execute,        ///< the application: CPU...
  ExecuteIo,      ///< ...and its interleaved data access (streaming)
  StageOut,       ///< output transfer to the data tier
  Cleanup,        ///< summary + sandbox removal
  kCount,
};
const char* to_string(Segment s);
constexpr std::size_t kNumSegments = static_cast<std::size_t>(Segment::kCount);

/// Task lifecycle in the DB.
enum class TaskStatus : std::uint8_t {
  Created,
  Submitted,
  Done,
  Failed,
  Evicted,
};
const char* to_string(TaskStatus s);

/// Task category, mirroring the paper's analysis vs merge split.
enum class TaskKind : std::uint8_t { Analysis, Merge };
const char* to_string(TaskKind k);

/// One task record.
struct TaskRecord {
  std::uint64_t task_id = 0;
  TaskKind kind = TaskKind::Analysis;
  TaskStatus status = TaskStatus::Created;
  std::vector<std::uint64_t> tasklets;  // analysis: tasklet ids; merge: output ids
  std::string worker;
  int exit_code = 0;
  double submit_time = 0.0;
  double finish_time = 0.0;
  double segment_time[kNumSegments] = {};
  double cpu_time = 0.0;       ///< pure processing inside Execute
  double lost_time = 0.0;      ///< wall time discarded by eviction
  double outputs_bytes = 0.0;  ///< volume of outputs the task produced
};

/// An output file produced by a completed analysis task.
struct OutputRecord {
  std::uint64_t output_id = 0;
  std::uint64_t task_id = 0;
  std::string path;
  double bytes = 0.0;
  bool merged = false;
};

/// The database.  Single-writer (the main Lobster process); reads are safe
/// from the same thread.  Persistence is an explicit journal file.
class Db {
 public:
  Db() = default;

  // ---- tasklets -------------------------------------------------------------

  /// Register the complete tasklet list (start of workflow).
  void register_tasklets(const std::vector<Tasklet>& tasklets);
  [[nodiscard]] std::size_t num_tasklets() const { return tasklets_.size(); }
  const Tasklet& tasklet(std::uint64_t id) const;
  TaskletStatus tasklet_status(std::uint64_t id) const;
  /// Permanently fail a pending tasklet (attempts exhausted).
  void mark_tasklet_failed(std::uint64_t id);
  std::uint32_t tasklet_attempts(std::uint64_t id) const;
  std::map<TaskletStatus, std::size_t> tasklet_status_counts() const;
  /// Ids of up to `limit` pending tasklets (creation order).
  std::vector<std::uint64_t> pending_tasklets(std::size_t limit) const;

  // ---- tasks ----------------------------------------------------------------

  /// Create a task over the given tasklet ids; marks them Assigned.
  /// Returns the new task id.
  std::uint64_t create_task(TaskKind kind,
                            const std::vector<std::uint64_t>& tasklet_ids,
                            double now);
  /// Record completion.  Analysis success marks tasklets Processed; failure
  /// or eviction returns them to Pending (attempts incremented).
  void finish_task(std::uint64_t task_id, const TaskRecord& result);
  const TaskRecord& task(std::uint64_t task_id) const;
  [[nodiscard]] std::size_t num_tasks() const { return tasks_.size(); }
  std::map<TaskStatus, std::size_t> task_status_counts() const;

  // ---- outputs --------------------------------------------------------------

  std::uint64_t record_output(std::uint64_t task_id, const std::string& path,
                              double bytes);
  void mark_merged(const std::vector<std::uint64_t>& output_ids);
  /// Unmerged outputs (id order).
  std::vector<OutputRecord> unmerged_outputs() const;
  const OutputRecord& output(std::uint64_t id) const;
  [[nodiscard]] std::size_t num_outputs() const { return outputs_.size(); }

  // ---- monitoring queries ----------------------------------------------------

  /// Histogram of one segment's duration over finished tasks.
  util::Histogram segment_histogram(Segment s, std::size_t nbins,
                                    double max_seconds) const;
  /// Aggregate time per segment over all finished tasks (the Figure 8 rows).
  std::vector<double> segment_totals() const;
  [[nodiscard]] double total_cpu_time() const;
  [[nodiscard]] double total_lost_time() const;
  /// The journal's view of the counter plane, name-ordered: task/tasklet
  /// status counts, per-segment wall sums, cpu/lost totals and output
  /// volume, under dotted core.db names.  A journal has no live
  /// CounterRegistry, so this synthesises the same shape the trace path
  /// records, letting lobster_report render both through one code path.
  [[nodiscard]] std::vector<std::pair<std::string, double>> counter_plane()
      const;

  // ---- persistence ------------------------------------------------------------

  /// Append-only JSONL journal of all state changes.
  void save_journal(const std::string& path) const;
  /// Rebuild a Db from a journal.
  static Db load_journal(const std::string& path);
  /// Crash recovery (paper §3 footnote: "system state is quickly and
  /// automatically recovered if the scheduler node should crash and
  /// reboot"): tasks that were in flight when the journal was written are
  /// marked Evicted and their tasklets returned to Pending.  Returns the
  /// number of recovered tasks.
  std::size_t recover_in_flight();
  /// Export the task table as CSV (for external analysis).
  [[nodiscard]] std::string tasks_csv() const;

 private:
  struct TaskletRow {
    Tasklet tasklet;
    TaskletStatus status = TaskletStatus::Pending;
    std::uint32_t attempts = 0;
    std::uint64_t task_id = 0;
  };

  std::map<std::uint64_t, TaskletRow> tasklets_;
  std::map<std::uint64_t, TaskRecord> tasks_;
  std::map<std::uint64_t, OutputRecord> outputs_;
  std::uint64_t next_task_id_ = 1;
  std::uint64_t next_output_id_ = 1;
};

}  // namespace lobster::core

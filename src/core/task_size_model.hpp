// task_size_model.hpp — the task-size selection simulation of paper §4.1
// (Figure 3).
//
// "We created a simple simulation model to determine the optimal task size,
// taking into account the distribution of task availability times, and the
// distribution of worker overheads, task overheads, and task execution
// times."  The model, verbatim from the paper:
//
//   * 100,000 tasklets in total; tasklet completion times Gaussian with
//     mu = 10 min, sigma = 5 min;
//   * 8,000 workers; per-worker overhead 5 min (cache population etc.),
//     incurred at startup and again after every eviction;
//   * per-task overhead 20 min (output transfer etc.);
//   * a pseudo-random sample of worker survival times is drawn; when a
//     worker's accumulated time exceeds its survival time it is "evicted":
//     all processing since the start of the current task is lost, a new
//     survival time is drawn, and the per-worker overhead is paid again;
//   * efficiency = effective processing time / total time.
//
// Three eviction scenarios (Figure 3): none, constant eviction probability,
// and a probability derived from observed availability times (Figure 2).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "util/histogram.hpp"
#include "util/rng.hpp"

namespace lobster::core {

/// Survival-time model for a (re)started worker.
class EvictionModel {
 public:
  virtual ~EvictionModel() = default;
  /// Draw the time until this worker incarnation is evicted.
  virtual double sample_survival(util::Rng& rng) const = 0;
  virtual const char* name() const = 0;
};

/// Never evicted (the solid curve of Figure 3).
class NoEviction final : public EvictionModel {
 public:
  double sample_survival(util::Rng&) const override;
  const char* name() const override { return "none"; }
};

/// Constant eviction probability per unit time (the dotted curve):
/// memoryless, i.e. exponential survival with rate `hazard_per_hour`.
class ConstantEviction final : public EvictionModel {
 public:
  explicit ConstantEviction(double hazard_per_hour = 0.1);
  double sample_survival(util::Rng& rng) const override;
  const char* name() const override { return "constant"; }
  double hazard_per_hour() const { return hazard_per_hour_; }

 private:
  double hazard_per_hour_;
};

/// Survival drawn from an empirical availability-time distribution (the
/// dashed curve, derived from months of observed logs as in Figure 2).
class EmpiricalEviction final : public EvictionModel {
 public:
  explicit EmpiricalEviction(util::EmpiricalDistribution availability);
  double sample_survival(util::Rng& rng) const override;
  const char* name() const override { return "observed"; }
  const util::EmpiricalDistribution& distribution() const { return dist_; }

 private:
  util::EmpiricalDistribution dist_;
};

/// Generate a synthetic multi-month availability log in the style of the
/// Figure 2 data: worker availability intervals as observed under HTCondor
/// eviction on the Notre Dame opportunistic pool.  Weibull with shape < 1
/// (decreasing hazard: young workers are the most likely to be evicted
/// soon, long-lived ones tend to survive longer).
std::vector<double> synthesize_availability_log(std::size_t samples,
                                                util::Rng rng,
                                                double shape = 0.8,
                                                double scale_hours = 4.0);

/// Bin an availability log into the eviction-probability-vs-availability
/// curve of Figure 2: for each availability-time bin, the probability that
/// a worker alive at the bin start is evicted within the bin, with binomial
/// uncertainties.
struct EvictionCurvePoint {
  double t_lo = 0.0;       ///< bin start (seconds)
  double t_hi = 0.0;       ///< bin end (seconds)
  double probability = 0.0;
  double sigma = 0.0;      ///< binomial error
  std::uint64_t at_risk = 0;
};
std::vector<EvictionCurvePoint> eviction_probability_curve(
    const std::vector<double>& availability_log, std::size_t nbins,
    double max_hours);

/// Inputs of the Figure 3 Monte Carlo (defaults are the paper's values).
struct TaskSizeModelParams {
  std::uint64_t num_tasklets = 100000;
  std::size_t num_workers = 8000;
  double worker_overhead = 5.0 * 60.0;   ///< per (re)start, seconds
  double task_overhead = 20.0 * 60.0;    ///< per task, seconds
  double tasklet_mean = 10.0 * 60.0;     ///< Gaussian mu, seconds
  double tasklet_sigma = 5.0 * 60.0;     ///< Gaussian sigma, seconds
  std::uint64_t seed = 2015;
};

struct TaskSizeModelResult {
  double task_hours = 0.0;            ///< requested average task length
  std::uint32_t tasklets_per_task = 0;
  double efficiency = 0.0;            ///< effective / total
  double effective_time = 0.0;        ///< sum of kept tasklet durations
  double total_time = 0.0;            ///< all worker-occupied time
  double lost_time = 0.0;             ///< work discarded by evictions
  double overhead_time = 0.0;         ///< worker + task overheads
  std::uint64_t evictions = 0;
};

/// Run the Monte Carlo for one average task length.
TaskSizeModelResult simulate_task_size(const TaskSizeModelParams& params,
                                       const EvictionModel& eviction,
                                       double task_hours);

/// Sweep task lengths and return one result per point (the Figure 3 x-axis
/// is 1..10 hours).
std::vector<TaskSizeModelResult> sweep_task_sizes(
    const TaskSizeModelParams& params, const EvictionModel& eviction,
    const std::vector<double>& task_hours);

/// Pick the task length with the best efficiency from a sweep — the
/// building block of the adaptive sizing controller (paper §8 future work).
double optimal_task_hours(const std::vector<TaskSizeModelResult>& sweep);

}  // namespace lobster::core

// merge.hpp — output-file merging (paper §4.4).
//
// Lobster task sizes are tuned for eviction, which "leads to significantly
// more and smaller output files compared to regular CMS workflows":
// publishing them as-is would require excessive metadata, so completed
// outputs (typically 10-100 MB) are merged into files of 3-4 GB.  Three
// strategies are implemented, matching Figure 7:
//
//  * Sequential  — after all analysis tasks are done, group outputs by size
//                  into merge tasks run like analysis tasks;
//  * Hadoop      — a Map-Reduce job inside the storage cluster: map groups
//                  the small files by target name, each reducer concatenates
//                  its group (see hdfs::run_mapreduce);
//  * Interleaved — merge tasks are created as soon as a workflow is more
//                  than 10% processed and enough finished outputs exist to
//                  fill a merged file; they run concurrently with analysis.
//                  (The mode Lobster uses in production.)
//
// The planner here is pure logic over the Lobster DB's output table, shared
// by the real scheduler, the Hadoop path and the DES scenarios.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/db.hpp"

namespace lobster::core {

enum class MergeMode : std::uint8_t { Sequential, Hadoop, Interleaved };
const char* to_string(MergeMode m);

/// One planned merge task: which outputs to concatenate into which file.
struct MergeGroup {
  std::vector<std::uint64_t> output_ids;
  double total_bytes = 0.0;
  std::string merged_path;
};

struct MergePolicy {
  /// Target size of merged files (paper: 3-4 GB).
  double target_bytes = 3.5e9;
  /// Minimum fill fraction for an interleaved merge group: groups are only
  /// formed once they can be at least this full (outputs merge only once).
  double min_fill = 0.9;
  /// Interleaved merging starts once this fraction of the workflow's
  /// tasklets is processed or merged (paper: 10%).
  double start_fraction = 0.10;
};

/// Greedy size grouping of `outputs` into merge groups near the target
/// size.  When `only_full` is set, a trailing underfull group is *not*
/// emitted (interleaved mode mid-run); a final sweep passes false to flush
/// the remainder.
std::vector<MergeGroup> plan_merges(const std::vector<OutputRecord>& outputs,
                                    const MergePolicy& policy, bool only_full,
                                    std::uint64_t name_seed);

/// True when interleaved merging may start: >= start_fraction of tasklets
/// are Processed or Merged.
bool interleave_ready(const Db& db, const MergePolicy& policy);

/// Convenience: plan the next interleaved merge groups against the DB
/// (unmerged outputs, full groups only, unless `final_sweep`).
std::vector<MergeGroup> next_interleaved_merges(const Db& db,
                                                const MergePolicy& policy,
                                                bool final_sweep);

}  // namespace lobster::core

// wrapper.hpp — the instrumented task wrapper (paper §3, §5).
//
// "Each task consists of a wrapper which performs pre- and post-processing
// around the actual application. ... The wrapper script that runs every
// user task is heavily instrumented.  It is broken down into logical
// segments ... Each segment records a timestamp and performs an internal
// test for success or failure, with a unique failure code that can be
// emitted for each segment."
//
// make_wrapper() assembles a wq work function from per-segment callbacks,
// timing each segment with a monotonic clock, writing the measurements into
// the task's key/value outputs (seg.* keys) and returning the distinct
// failure code of the first segment that fails.  Eviction is honoured
// between segments and inside cooperative callbacks.
#pragma once

#include <functional>
#include <string>

#include "core/db.hpp"
#include "wq/task.hpp"

namespace lobster::core {

/// Per-segment callbacks.  Boolean stages report success; execute returns
/// the application exit code (0 = success).  Null stages are skipped (zero
/// time).  Stages may poll ctx.cancel for cooperative eviction.
struct WrapperStages {
  std::function<bool(wq::TaskContext&)> check_machine;
  std::function<bool(wq::TaskContext&)> setup_environment;
  std::function<bool(wq::TaskContext&)> stage_in;
  std::function<int(wq::TaskContext&)> execute;
  std::function<bool(wq::TaskContext&)> stage_out;
  std::function<bool(wq::TaskContext&)> cleanup;
};

/// Keys under which the wrapper reports measurements in ctx.outputs.
namespace wrapper_keys {
inline constexpr const char* kEnvSetup = "seg.env_setup";
inline constexpr const char* kStageIn = "seg.stage_in";
inline constexpr const char* kExecute = "seg.execute";
inline constexpr const char* kStageOut = "seg.stage_out";
inline constexpr const char* kCleanup = "seg.cleanup";
/// Set by the execute payload when it can distinguish CPU from I/O time.
inline constexpr const char* kCpuSeconds = "app.cpu_seconds";
inline constexpr const char* kIoSeconds = "app.io_seconds";
inline constexpr const char* kOutputBytes = "app.output_bytes";
}  // namespace wrapper_keys

/// Build the wq work function.
std::function<int(wq::TaskContext&)> make_wrapper(WrapperStages stages);

/// Reconstruct a TaskRecord's segment times / cpu time from the wrapper's
/// ctx.outputs measurements plus the wq-level result fields.
void fill_record_from_result(const wq::TaskResult& result, TaskRecord& record);

}  // namespace lobster::core

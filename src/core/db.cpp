#include "core/db.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace lobster::core {

const char* to_string(Segment s) {
  switch (s) {
    case Segment::Dispatch: return "dispatch";
    case Segment::EnvSetup: return "env_setup";
    case Segment::StageIn: return "stage_in";
    case Segment::Execute: return "execute";
    case Segment::ExecuteIo: return "execute_io";
    case Segment::StageOut: return "stage_out";
    case Segment::Cleanup: return "cleanup";
    case Segment::kCount: break;
  }
  return "?";
}

const char* to_string(TaskStatus s) {
  switch (s) {
    case TaskStatus::Created: return "created";
    case TaskStatus::Submitted: return "submitted";
    case TaskStatus::Done: return "done";
    case TaskStatus::Failed: return "failed";
    case TaskStatus::Evicted: return "evicted";
  }
  return "?";
}

const char* to_string(TaskKind k) {
  switch (k) {
    case TaskKind::Analysis: return "analysis";
    case TaskKind::Merge: return "merge";
  }
  return "?";
}

void Db::register_tasklets(const std::vector<Tasklet>& tasklets) {
  for (const auto& t : tasklets) {
    const auto [it, inserted] = tasklets_.emplace(t.id, TaskletRow{t, {}, 0, 0});
    if (!inserted)
      throw std::invalid_argument("db: duplicate tasklet id " +
                                  std::to_string(t.id));
  }
}

const Tasklet& Db::tasklet(std::uint64_t id) const {
  const auto it = tasklets_.find(id);
  if (it == tasklets_.end())
    throw std::out_of_range("db: unknown tasklet " + std::to_string(id));
  return it->second.tasklet;
}

void Db::mark_tasklet_failed(std::uint64_t id) {
  auto it = tasklets_.find(id);
  if (it == tasklets_.end())
    throw std::out_of_range("db: unknown tasklet " + std::to_string(id));
  if (it->second.status != TaskletStatus::Pending)
    throw std::logic_error("db: only pending tasklets can be failed");
  it->second.status = TaskletStatus::Failed;
}

TaskletStatus Db::tasklet_status(std::uint64_t id) const {
  const auto it = tasklets_.find(id);
  if (it == tasklets_.end())
    throw std::out_of_range("db: unknown tasklet " + std::to_string(id));
  return it->second.status;
}

std::uint32_t Db::tasklet_attempts(std::uint64_t id) const {
  const auto it = tasklets_.find(id);
  if (it == tasklets_.end())
    throw std::out_of_range("db: unknown tasklet " + std::to_string(id));
  return it->second.attempts;
}

std::map<TaskletStatus, std::size_t> Db::tasklet_status_counts() const {
  std::map<TaskletStatus, std::size_t> out;
  for (const auto& [id, row] : tasklets_) ++out[row.status];
  return out;
}

std::vector<std::uint64_t> Db::pending_tasklets(std::size_t limit) const {
  std::vector<std::uint64_t> out;
  for (const auto& [id, row] : tasklets_) {
    if (row.status == TaskletStatus::Pending) {
      out.push_back(id);
      if (out.size() >= limit) break;
    }
  }
  return out;
}

std::uint64_t Db::create_task(TaskKind kind,
                              const std::vector<std::uint64_t>& tasklet_ids,
                              double now) {
  TaskRecord rec;
  rec.task_id = next_task_id_++;
  rec.kind = kind;
  rec.status = TaskStatus::Submitted;
  rec.tasklets = tasklet_ids;
  rec.submit_time = now;
  if (kind == TaskKind::Analysis) {
    for (std::uint64_t id : tasklet_ids) {
      auto it = tasklets_.find(id);
      if (it == tasklets_.end())
        throw std::out_of_range("db: unknown tasklet " + std::to_string(id));
      if (it->second.status != TaskletStatus::Pending)
        throw std::logic_error("db: tasklet " + std::to_string(id) +
                               " is not pending");
      it->second.status = TaskletStatus::Assigned;
      it->second.task_id = rec.task_id;
    }
  }
  const std::uint64_t id = rec.task_id;
  tasks_.emplace(id, std::move(rec));
  return id;
}

void Db::finish_task(std::uint64_t task_id, const TaskRecord& result) {
  auto it = tasks_.find(task_id);
  if (it == tasks_.end())
    throw std::out_of_range("db: unknown task " + std::to_string(task_id));
  TaskRecord& rec = it->second;
  if (rec.status != TaskStatus::Submitted)
    throw std::logic_error("db: task " + std::to_string(task_id) +
                           " finished twice");
  // Identity fields are authoritative in the DB; the result only carries
  // measurements.
  const TaskKind kind = rec.kind;
  const auto tasklet_ids = rec.tasklets;
  const double submit_time = rec.submit_time;
  rec = result;
  rec.task_id = task_id;
  rec.kind = kind;
  rec.tasklets = tasklet_ids;
  rec.submit_time = submit_time;
  if (rec.status == TaskStatus::Submitted || rec.status == TaskStatus::Created)
    throw std::logic_error("db: finish_task needs a terminal status");

  if (kind != TaskKind::Analysis) return;
  for (std::uint64_t id : tasklet_ids) {
    auto& row = tasklets_.at(id);
    if (rec.status == TaskStatus::Done) {
      row.status = TaskletStatus::Processed;
    } else {
      // Failure or eviction: the work returns to the pool for resubmission.
      row.status = TaskletStatus::Pending;
      ++row.attempts;
      row.task_id = 0;
    }
  }
}

const TaskRecord& Db::task(std::uint64_t task_id) const {
  const auto it = tasks_.find(task_id);
  if (it == tasks_.end())
    throw std::out_of_range("db: unknown task " + std::to_string(task_id));
  return it->second;
}

std::map<TaskStatus, std::size_t> Db::task_status_counts() const {
  std::map<TaskStatus, std::size_t> out;
  for (const auto& [id, rec] : tasks_) ++out[rec.status];
  return out;
}

std::uint64_t Db::record_output(std::uint64_t task_id, const std::string& path,
                                double bytes) {
  if (!tasks_.count(task_id))
    throw std::out_of_range("db: unknown task " + std::to_string(task_id));
  OutputRecord rec;
  rec.output_id = next_output_id_++;
  rec.task_id = task_id;
  rec.path = path;
  rec.bytes = bytes;
  const std::uint64_t id = rec.output_id;
  outputs_.emplace(id, std::move(rec));
  return id;
}

void Db::mark_merged(const std::vector<std::uint64_t>& output_ids) {
  for (std::uint64_t id : output_ids) {
    auto it = outputs_.find(id);
    if (it == outputs_.end())
      throw std::out_of_range("db: unknown output " + std::to_string(id));
    if (it->second.merged)
      throw std::logic_error("db: output " + std::to_string(id) +
                             " merged twice");
    it->second.merged = true;
    // Mark the owning task's tasklets Merged.
    const auto& task = tasks_.at(it->second.task_id);
    for (std::uint64_t tid : task.tasklets) {
      auto tit = tasklets_.find(tid);
      if (tit != tasklets_.end() &&
          tit->second.status == TaskletStatus::Processed)
        tit->second.status = TaskletStatus::Merged;
    }
  }
}

std::vector<OutputRecord> Db::unmerged_outputs() const {
  std::vector<OutputRecord> out;
  for (const auto& [id, rec] : outputs_)
    if (!rec.merged) out.push_back(rec);
  return out;
}

const OutputRecord& Db::output(std::uint64_t id) const {
  const auto it = outputs_.find(id);
  if (it == outputs_.end())
    throw std::out_of_range("db: unknown output " + std::to_string(id));
  return it->second;
}

util::Histogram Db::segment_histogram(Segment s, std::size_t nbins,
                                      double max_seconds) const {
  util::Histogram h(nbins, 0.0, max_seconds);
  const std::size_t idx = static_cast<std::size_t>(s);
  for (const auto& [id, rec] : tasks_)
    if (rec.status != TaskStatus::Submitted &&
        rec.status != TaskStatus::Created)
      h.fill(rec.segment_time[idx]);
  return h;
}

std::vector<double> Db::segment_totals() const {
  std::vector<double> out(kNumSegments, 0.0);
  for (const auto& [id, rec] : tasks_)
    for (std::size_t s = 0; s < kNumSegments; ++s)
      out[s] += rec.segment_time[s];
  return out;
}

double Db::total_cpu_time() const {
  double sum = 0.0;
  for (const auto& [id, rec] : tasks_) sum += rec.cpu_time;
  return sum;
}

double Db::total_lost_time() const {
  double sum = 0.0;
  for (const auto& [id, rec] : tasks_) sum += rec.lost_time;
  return sum;
}

std::vector<std::pair<std::string, double>> Db::counter_plane() const {
  std::vector<std::pair<std::string, double>> out;
  out.emplace_back("core.db.cpu_seconds", total_cpu_time());
  out.emplace_back("core.db.lost_seconds", total_lost_time());
  double output_bytes = 0.0;
  for (const auto& [id, rec] : outputs_) output_bytes += rec.bytes;
  out.emplace_back("core.db.output_bytes", output_bytes);
  out.emplace_back("core.db.outputs_total",
                   static_cast<double>(outputs_.size()));
  const std::vector<double> seg = segment_totals();
  for (std::size_t s = 0; s < kNumSegments; ++s)
    out.emplace_back(std::string("core.db.segment_") +
                         to_string(static_cast<Segment>(s)) + "_seconds",
                     seg[s]);
  for (const auto& [status, n] : tasklet_status_counts())
    out.emplace_back(std::string("core.db.tasklets_") + to_string(status),
                     static_cast<double>(n));
  for (const auto& [status, n] : task_status_counts())
    out.emplace_back(std::string("core.db.tasks_") + to_string(status),
                     static_cast<double>(n));
  std::sort(out.begin(), out.end());
  return out;
}

// ---- persistence ------------------------------------------------------------

namespace {
// Minimal JSON string escaping for paths.
std::string escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}
}  // namespace

void Db::save_journal(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("db: cannot write " + path);
  out.precision(17);
  for (const auto& [id, row] : tasklets_) {
    out << R"({"type":"tasklet","id":)" << id << R"(,"lfn":")"
        << escape(row.tasklet.input_lfn) << R"(","events":)"
        << row.tasklet.events << R"(,"bytes":)" << row.tasklet.input_bytes
        << R"(,"out_bytes":)" << row.tasklet.expected_output_bytes
        << R"(,"run":)" << row.tasklet.first_lumi.run << R"(,"lumi0":)"
        << row.tasklet.first_lumi.lumi << R"(,"lumi1":)"
        << row.tasklet.last_lumi.lumi << R"(,"status":)"
        << static_cast<int>(row.status) << R"(,"attempts":)" << row.attempts
        << R"(,"task":)" << row.task_id << "}\n";
  }
  for (const auto& [id, rec] : tasks_) {
    out << R"({"type":"task","id":)" << id << R"(,"kind":)"
        << static_cast<int>(rec.kind) << R"(,"status":)"
        << static_cast<int>(rec.status) << R"(,"exit":)" << rec.exit_code
        << R"(,"worker":")" << escape(rec.worker) << R"(","submit":)"
        << rec.submit_time << R"(,"finish":)" << rec.finish_time
        << R"(,"cpu":)" << rec.cpu_time << R"(,"lost":)" << rec.lost_time
        << R"(,"segments":[)";
    for (std::size_t s = 0; s < kNumSegments; ++s)
      out << (s ? "," : "") << rec.segment_time[s];
    out << R"(],"tasklets":[)";
    for (std::size_t i = 0; i < rec.tasklets.size(); ++i)
      out << (i ? "," : "") << rec.tasklets[i];
    out << "]}\n";
  }
  for (const auto& [id, rec] : outputs_) {
    out << R"({"type":"output","id":)" << id << R"(,"task":)" << rec.task_id
        << R"(,"path":")" << escape(rec.path) << R"(","bytes":)" << rec.bytes
        << R"(,"merged":)" << (rec.merged ? "true" : "false") << "}\n";
  }
}

namespace {
// A tolerant line-oriented parser for the journal we write: extracts one
// scalar or array field by key.  Not a general JSON parser — only the
// journal's own format is supported.
std::optional<std::string> field(const std::string& line,
                                 const std::string& key) {
  const std::string pat = "\"" + key + "\":";
  const auto pos = line.find(pat);
  if (pos == std::string::npos) return std::nullopt;
  std::size_t begin = pos + pat.size();
  if (line[begin] == '"') {
    std::string out;
    for (std::size_t i = begin + 1; i < line.size(); ++i) {
      if (line[i] == '\\') {
        ++i;
        out += line[i];
      } else if (line[i] == '"') {
        return out;
      } else {
        out += line[i];
      }
    }
    return std::nullopt;
  }
  if (line[begin] == '[') {
    const auto end = line.find(']', begin);
    return line.substr(begin + 1, end - begin - 1);
  }
  std::size_t end = begin;
  while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  return line.substr(begin, end - begin);
}

std::vector<double> parse_array(const std::string& text) {
  std::vector<double> out;
  std::istringstream in(text);
  std::string item;
  while (std::getline(in, item, ','))
    if (!item.empty()) out.push_back(std::strtod(item.c_str(), nullptr));
  return out;
}
}  // namespace

Db Db::load_journal(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("db: cannot read " + path);
  Db db;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto type = field(line, "type");
    if (!type) throw std::runtime_error("db: journal line without type");
    if (*type == "tasklet") {
      TaskletRow row;
      row.tasklet.id = std::strtoull(field(line, "id")->c_str(), nullptr, 10);
      row.tasklet.input_lfn = *field(line, "lfn");
      row.tasklet.events =
          std::strtoull(field(line, "events")->c_str(), nullptr, 10);
      row.tasklet.input_bytes = std::strtod(field(line, "bytes")->c_str(), nullptr);
      row.tasklet.expected_output_bytes =
          std::strtod(field(line, "out_bytes")->c_str(), nullptr);
      row.tasklet.first_lumi.run = static_cast<std::uint32_t>(
          std::strtoul(field(line, "run")->c_str(), nullptr, 10));
      row.tasklet.first_lumi.lumi = static_cast<std::uint32_t>(
          std::strtoul(field(line, "lumi0")->c_str(), nullptr, 10));
      row.tasklet.last_lumi.run = row.tasklet.first_lumi.run;
      row.tasklet.last_lumi.lumi = static_cast<std::uint32_t>(
          std::strtoul(field(line, "lumi1")->c_str(), nullptr, 10));
      row.status = static_cast<TaskletStatus>(
          std::strtol(field(line, "status")->c_str(), nullptr, 10));
      row.attempts = static_cast<std::uint32_t>(
          std::strtoul(field(line, "attempts")->c_str(), nullptr, 10));
      row.task_id = std::strtoull(field(line, "task")->c_str(), nullptr, 10);
      db.tasklets_.emplace(row.tasklet.id, std::move(row));
    } else if (*type == "task") {
      TaskRecord rec;
      rec.task_id = std::strtoull(field(line, "id")->c_str(), nullptr, 10);
      rec.kind = static_cast<TaskKind>(
          std::strtol(field(line, "kind")->c_str(), nullptr, 10));
      rec.status = static_cast<TaskStatus>(
          std::strtol(field(line, "status")->c_str(), nullptr, 10));
      rec.exit_code = static_cast<int>(
          std::strtol(field(line, "exit")->c_str(), nullptr, 10));
      rec.worker = *field(line, "worker");
      rec.submit_time = std::strtod(field(line, "submit")->c_str(), nullptr);
      rec.finish_time = std::strtod(field(line, "finish")->c_str(), nullptr);
      rec.cpu_time = std::strtod(field(line, "cpu")->c_str(), nullptr);
      rec.lost_time = std::strtod(field(line, "lost")->c_str(), nullptr);
      const auto segs = parse_array(*field(line, "segments"));
      for (std::size_t s = 0; s < kNumSegments && s < segs.size(); ++s)
        rec.segment_time[s] = segs[s];
      for (double v : parse_array(*field(line, "tasklets")))
        rec.tasklets.push_back(static_cast<std::uint64_t>(v));
      db.next_task_id_ = std::max(db.next_task_id_, rec.task_id + 1);
      db.tasks_.emplace(rec.task_id, std::move(rec));
    } else if (*type == "output") {
      OutputRecord rec;
      rec.output_id = std::strtoull(field(line, "id")->c_str(), nullptr, 10);
      rec.task_id = std::strtoull(field(line, "task")->c_str(), nullptr, 10);
      rec.path = *field(line, "path");
      rec.bytes = std::strtod(field(line, "bytes")->c_str(), nullptr);
      rec.merged = *field(line, "merged") == "true";
      db.next_output_id_ = std::max(db.next_output_id_, rec.output_id + 1);
      db.outputs_.emplace(rec.output_id, std::move(rec));
    } else {
      throw std::runtime_error("db: unknown journal record type " + *type);
    }
  }
  return db;
}

std::size_t Db::recover_in_flight() {
  std::size_t recovered = 0;
  for (auto& [id, rec] : tasks_) {
    if (rec.status != TaskStatus::Submitted &&
        rec.status != TaskStatus::Created)
      continue;
    rec.status = TaskStatus::Evicted;
    rec.exit_code = 179;  // evicted: the crash lost whatever was running
    ++recovered;
    if (rec.kind != TaskKind::Analysis) continue;
    for (std::uint64_t tid : rec.tasklets) {
      auto it = tasklets_.find(tid);
      if (it != tasklets_.end() &&
          it->second.status == TaskletStatus::Assigned) {
        it->second.status = TaskletStatus::Pending;
        ++it->second.attempts;
        it->second.task_id = 0;
      }
    }
  }
  return recovered;
}

std::string Db::tasks_csv() const {
  std::ostringstream out;
  out << "task_id,kind,status,exit_code,worker,submit,finish,cpu,lost";
  for (std::size_t s = 0; s < kNumSegments; ++s)
    out << ',' << to_string(static_cast<Segment>(s));
  out << '\n';
  for (const auto& [id, rec] : tasks_) {
    out << id << ',' << to_string(rec.kind) << ',' << to_string(rec.status)
        << ',' << rec.exit_code << ',' << rec.worker << ',' << rec.submit_time
        << ',' << rec.finish_time << ',' << rec.cpu_time << ','
        << rec.lost_time;
    for (std::size_t s = 0; s < kNumSegments; ++s)
      out << ',' << rec.segment_time[s];
    out << '\n';
  }
  return out.str();
}

}  // namespace lobster::core

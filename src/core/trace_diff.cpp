#include "core/trace_diff.hpp"

#include <algorithm>
#include <cmath>

namespace lobster::core {

const char* diff_bucket_name(std::size_t bucket) {
  if (bucket < kNumSegments)
    return to_string(static_cast<Segment>(bucket));
  if (bucket == kBucketFailed) return "failed";
  if (bucket == kBucketLost) return "lost";
  return "?";
}

namespace {

/// Per-task wall seconds this record contributes to `bucket` (the Figure 8
/// accounting: failed/evicted tasks charge everything to "failed").
double bucket_value(const TaskRecord& rec, std::size_t bucket) {
  const bool failed =
      rec.status == TaskStatus::Failed || rec.status == TaskStatus::Evicted;
  if (failed) {
    if (bucket != kBucketFailed) return 0.0;
    double wall = rec.lost_time;
    for (std::size_t s = 0; s < kNumSegments; ++s) wall += rec.segment_time[s];
    return wall;
  }
  if (bucket < kNumSegments) return rec.segment_time[bucket];
  if (bucket == kBucketLost) return rec.lost_time;
  return 0.0;
}

}  // namespace

RunAttribution attribute_records(const std::vector<TaskRecord>& records,
                                 std::string label) {
  RunAttribution out;
  out.label = std::move(label);
  for (const TaskRecord& rec : records) {
    ++out.tasks;
    const bool failed =
        rec.status == TaskStatus::Failed || rec.status == TaskStatus::Evicted;
    if (failed) ++out.failures;
    if (!failed && rec.kind == TaskKind::Analysis)
      out.tasklets_processed += rec.tasklets.size();
    out.makespan = std::max(out.makespan, rec.finish_time);
    for (std::size_t bkt = 0; bkt < kNumDiffBuckets; ++bkt)
      out.bucket_seconds[bkt] += bucket_value(rec, bkt);
  }
  if (out.makespan > 0.0)
    out.goodput =
        static_cast<double>(out.tasklets_processed) / (out.makespan / 3600.0);
  return out;
}

TraceDiff diff_task_records(const std::vector<TaskRecord>& a,
                            const std::vector<TaskRecord>& b,
                            std::string label_a, std::string label_b,
                            std::size_t hist_bins) {
  TraceDiff out;
  out.a = attribute_records(a, std::move(label_a));
  out.b = attribute_records(b, std::move(label_b));
  out.makespan_delta = out.b.makespan - out.a.makespan;
  out.goodput_delta = out.b.goodput - out.a.goodput;

  double abs_sum = 0.0;
  for (std::size_t bkt = 0; bkt < kNumDiffBuckets; ++bkt)
    abs_sum += std::fabs(out.b.bucket_seconds[bkt] - out.a.bucket_seconds[bkt]);
  out.movers.reserve(kNumDiffBuckets);
  for (std::size_t bkt = 0; bkt < kNumDiffBuckets; ++bkt) {
    DiffMover m;
    m.bucket = diff_bucket_name(bkt);
    m.before = out.a.bucket_seconds[bkt];
    m.after = out.b.bucket_seconds[bkt];
    m.delta = m.after - m.before;
    m.share = abs_sum > 0.0 ? std::fabs(m.delta) / abs_sum : 0.0;
    out.movers.push_back(std::move(m));
  }
  // |delta| descending; stable sort so equal movers keep bucket order and
  // the ranking stays deterministic.
  std::stable_sort(out.movers.begin(), out.movers.end(),
                   [](const DiffMover& x, const DiffMover& y) {
                     return std::fabs(x.delta) > std::fabs(y.delta);
                   });

  // Shared-edge histograms: one range per bucket spanning both runs, so a
  // distribution shift is visible bin by bin rather than hidden by
  // per-run auto-ranging.
  if (hist_bins > 0) {
    out.histograms.reserve(kNumDiffBuckets);
    for (std::size_t bkt = 0; bkt < kNumDiffBuckets; ++bkt) {
      double hi = 0.0;
      for (const TaskRecord& rec : a)
        hi = std::max(hi, bucket_value(rec, bkt));
      for (const TaskRecord& rec : b)
        hi = std::max(hi, bucket_value(rec, bkt));
      if (!(hi > 0.0)) hi = 1.0;  // empty bucket: keep a valid [0, 1) range
      BucketHistograms bh{diff_bucket_name(bkt),
                          util::Histogram(hist_bins, 0.0, hi * (1.0 + 1e-12)),
                          util::Histogram(hist_bins, 0.0, hi * (1.0 + 1e-12))};
      for (const TaskRecord& rec : a) {
        const double v = bucket_value(rec, bkt);
        if (v > 0.0) bh.before.fill(v);
      }
      for (const TaskRecord& rec : b) {
        const double v = bucket_value(rec, bkt);
        if (v > 0.0) bh.after.fill(v);
      }
      out.histograms.push_back(std::move(bh));
    }
  }
  return out;
}

}  // namespace lobster::core

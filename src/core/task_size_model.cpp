#include "core/task_size_model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace lobster::core {

double NoEviction::sample_survival(util::Rng&) const {
  return std::numeric_limits<double>::infinity();
}

ConstantEviction::ConstantEviction(double hazard_per_hour)
    : hazard_per_hour_(hazard_per_hour) {
  if (hazard_per_hour <= 0.0)
    throw std::invalid_argument("ConstantEviction: hazard must be > 0");
}

double ConstantEviction::sample_survival(util::Rng& rng) const {
  return rng.exponential(3600.0 / hazard_per_hour_);
}

EmpiricalEviction::EmpiricalEviction(util::EmpiricalDistribution availability)
    : dist_(std::move(availability)) {
  if (dist_.empty())
    throw std::invalid_argument("EmpiricalEviction: empty distribution");
}

double EmpiricalEviction::sample_survival(util::Rng& rng) const {
  return dist_.sample(rng);
}

std::vector<double> synthesize_availability_log(std::size_t samples,
                                                util::Rng rng, double shape,
                                                double scale_hours) {
  if (samples == 0)
    throw std::invalid_argument("availability log: samples must be > 0");
  std::vector<double> out;
  out.reserve(samples);
  for (std::size_t i = 0; i < samples; ++i)
    out.push_back(rng.weibull(shape, scale_hours * 3600.0));
  return out;
}

std::vector<EvictionCurvePoint> eviction_probability_curve(
    const std::vector<double>& availability_log, std::size_t nbins,
    double max_hours) {
  if (nbins == 0 || max_hours <= 0.0)
    throw std::invalid_argument("eviction curve: bad binning");
  const double width = max_hours * 3600.0 / static_cast<double>(nbins);
  std::vector<EvictionCurvePoint> out(nbins);
  for (std::size_t b = 0; b < nbins; ++b) {
    out[b].t_lo = static_cast<double>(b) * width;
    out[b].t_hi = out[b].t_lo + width;
  }
  // For each bin: at_risk = workers whose availability >= bin start;
  // evicted-in-bin = workers whose availability ends inside the bin.
  for (double a : availability_log) {
    for (std::size_t b = 0; b < nbins; ++b) {
      if (a < out[b].t_lo) break;
      ++out[b].at_risk;
      if (a < out[b].t_hi) {
        out[b].probability += 1.0;  // temporarily: eviction count
        break;
      }
    }
  }
  for (auto& p : out) {
    const auto est = util::binomial_estimate(
        p.probability, static_cast<double>(p.at_risk));
    p.probability = est.p;
    p.sigma = est.sigma;
  }
  return out;
}

TaskSizeModelResult simulate_task_size(const TaskSizeModelParams& params,
                                       const EvictionModel& eviction,
                                       double task_hours) {
  if (task_hours <= 0.0)
    throw std::invalid_argument("task size: task_hours must be > 0");
  const std::uint32_t tasklets_per_task = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(
             std::lround(task_hours * 3600.0 / params.tasklet_mean)));

  TaskSizeModelResult res;
  res.task_hours = task_hours;
  res.tasklets_per_task = tasklets_per_task;

  util::Rng root(params.seed);
  std::uint64_t remaining = params.num_tasklets;

  // Tasks are assigned round-robin over the worker pool, so every worker
  // processes its share sequentially while the farm as a whole runs in
  // parallel — per-worker overhead is amortized over each worker's ~2 hours
  // of fair-share work, exactly the regime the paper's Figure 3 explores.
  // Workers pay the startup overhead lazily, on their first task.
  struct WorkerState {
    util::Rng rng{0};
    double survival = 0.0;
    double clock = 0.0;
    bool started = false;
  };
  std::vector<WorkerState> workers(params.num_workers);
  std::size_t next_worker = 0;

  // Accounting identity: total = effective + overheads + lost, summed from
  // the per-category accumulators at the end.
  while (remaining > 0) {
    WorkerState& w = workers[next_worker];
    if (!w.started) {
      w.rng = root.stream("worker", next_worker);
      w.started = true;
      w.survival = eviction.sample_survival(w.rng);
      w.clock = params.worker_overhead;  // populate the cold cache
      res.overhead_time += params.worker_overhead;
    }
    next_worker = (next_worker + 1) % params.num_workers;

    const std::uint32_t n = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(tasklets_per_task, remaining));

    // Retry the task until an incarnation of this worker survives it.
    for (int attempt = 0;; ++attempt) {
      double task_proc = 0.0;
      for (std::uint32_t i = 0; i < n; ++i)
        task_proc += w.rng.truncated_normal(params.tasklet_mean,
                                            params.tasklet_sigma, 0.0);
      const double task_time = task_proc + params.task_overhead;

      if (w.clock + task_time <= w.survival || attempt >= 1000) {
        // Task completed (the attempt cap only guards empirical
        // distributions whose support is shorter than the task).
        w.clock += task_time;
        res.effective_time += task_proc;
        res.overhead_time += params.task_overhead;
        break;
      }
      // Evicted mid-task: everything since the task start is lost, the
      // worker restarts (new survival draw + worker overhead again).
      ++res.evictions;
      res.lost_time += std::max(0.0, w.survival - w.clock);
      res.overhead_time += params.worker_overhead;
      w.survival = eviction.sample_survival(w.rng);
      w.clock = params.worker_overhead;
    }
    remaining -= n;
  }

  res.total_time = res.effective_time + res.overhead_time + res.lost_time;
  res.efficiency = res.total_time > 0.0
                       ? res.effective_time / res.total_time
                       : 0.0;
  return res;
}

std::vector<TaskSizeModelResult> sweep_task_sizes(
    const TaskSizeModelParams& params, const EvictionModel& eviction,
    const std::vector<double>& task_hours) {
  std::vector<TaskSizeModelResult> out;
  out.reserve(task_hours.size());
  for (double h : task_hours)
    out.push_back(simulate_task_size(params, eviction, h));
  return out;
}

double optimal_task_hours(const std::vector<TaskSizeModelResult>& sweep) {
  if (sweep.empty()) throw std::invalid_argument("optimal: empty sweep");
  const auto best = std::max_element(
      sweep.begin(), sweep.end(), [](const auto& a, const auto& b) {
        return a.efficiency < b.efficiency;
      });
  return best->task_hours;
}

}  // namespace lobster::core

#include "core/merge.hpp"

#include <cstdio>
#include <stdexcept>

namespace lobster::core {

const char* to_string(MergeMode m) {
  switch (m) {
    case MergeMode::Sequential: return "sequential";
    case MergeMode::Hadoop: return "hadoop";
    case MergeMode::Interleaved: return "interleaved";
  }
  return "?";
}

std::vector<MergeGroup> plan_merges(const std::vector<OutputRecord>& outputs,
                                    const MergePolicy& policy, bool only_full,
                                    std::uint64_t name_seed) {
  if (policy.target_bytes <= 0.0)
    throw std::invalid_argument("merge: target_bytes must be positive");
  std::vector<MergeGroup> groups;
  MergeGroup current;
  std::uint64_t serial = name_seed;
  auto flush = [&] {
    if (current.output_ids.empty()) return;
    char buf[64];
    std::snprintf(buf, sizeof buf, "merged_%06llu.root",
                  static_cast<unsigned long long>(serial++));
    current.merged_path = buf;
    groups.push_back(std::move(current));
    current = MergeGroup{};
  };
  for (const auto& out : outputs) {
    if (out.merged)
      throw std::logic_error("merge: output already merged: " + out.path);
    if (!current.output_ids.empty() &&
        current.total_bytes + out.bytes > policy.target_bytes)
      flush();
    current.output_ids.push_back(out.output_id);
    current.total_bytes += out.bytes;
    if (current.total_bytes >= policy.target_bytes * policy.min_fill) flush();
  }
  if (!only_full) flush();
  return groups;
}

bool interleave_ready(const Db& db, const MergePolicy& policy) {
  const auto counts = db.tasklet_status_counts();
  std::size_t done = 0, total = 0;
  for (const auto& [status, n] : counts) {
    total += n;
    if (status == TaskletStatus::Processed || status == TaskletStatus::Merged)
      done += n;
  }
  if (total == 0) return false;
  return static_cast<double>(done) / static_cast<double>(total) >=
         policy.start_fraction;
}

std::vector<MergeGroup> next_interleaved_merges(const Db& db,
                                                const MergePolicy& policy,
                                                bool final_sweep) {
  if (!final_sweep && !interleave_ready(db, policy)) return {};
  return plan_merges(db.unmerged_outputs(), policy, /*only_full=*/!final_sweep,
                     db.num_tasks());
}

}  // namespace lobster::core

// scheduler.hpp — the main Lobster process (paper §3, Figure 1).
//
// "An execution begins with the main Lobster process that is invoked by the
// user to initiate a workload. ... The main Lobster process creates an
// instance of a master, generates individual tasks, records them in the
// Lobster DB, and then submits the tasks to the master."
//
// The Scheduler drives a workflow against the real (thread-based) Work
// Queue runtime:
//   * keeps a buffer of dispatched tasks topped up (paper: 400);
//   * groups pending tasklets into tasks of the configured size;
//   * resubmits the tasklets of evicted/failed tasks (until max_attempts);
//   * plans merge tasks in the configured mode (interleaved merges run
//     concurrently with analysis once the workflow is >= 10% processed);
//   * feeds every finished task into the Lobster DB and the Monitor;
//   * optionally adapts the task size to the observed eviction rate —
//     the "automatic performance optimization through dynamic adjustment of
//     task size" the paper names as future work (§8).
//
// The application payload is injected through callbacks, keeping the
// scheduler free of any experiment-specific code (paper §7 calls out this
// separation as the path to non-CMS use).
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/db.hpp"
#include "core/merge.hpp"
#include "core/monitor.hpp"
#include "core/workflow.hpp"
#include "core/wrapper.hpp"
#include "wq/master.hpp"

namespace lobster::core {

/// Builds the wrapper stages for an analysis task over `tasklets`.
using AnalysisPayload =
    std::function<WrapperStages(const std::vector<Tasklet>& tasklets)>;
/// Builds the wrapper stages for a merge task over `outputs`.
using MergePayload =
    std::function<WrapperStages(const MergeGroup& group,
                                const std::vector<OutputRecord>& outputs)>;

struct RunReport {
  std::size_t tasklets_total = 0;
  std::size_t tasklets_processed = 0;
  std::size_t tasklets_failed = 0;  ///< attempts exhausted
  std::size_t analysis_tasks = 0;
  std::size_t merge_tasks = 0;
  std::size_t evictions = 0;
  std::size_t failures = 0;
  std::vector<std::string> merged_files;
  RuntimeBreakdown breakdown;
};

class Scheduler {
 public:
  Scheduler(WorkflowConfig config, AnalysisPayload analysis,
            MergePayload merge);

  /// Run the complete workflow (tasklet list from decompose*) on `master`.
  /// Workers must be attached to the master by the caller (they may come
  /// and go during the run — that is the point).  Blocks until every
  /// tasklet is processed or permanently failed and merging is complete.
  RunReport run(wq::Master& master, std::vector<Tasklet> tasklets);

  /// Resume a crashed run from a recovered Lobster DB (paper §3 footnote):
  /// in-flight tasks are marked evicted, their tasklets return to the pool,
  /// and the workflow continues to completion.  Processed/merged state is
  /// preserved.
  RunReport resume(wq::Master& master, Db recovered);

  const Db& db() const { return db_; }
  const Monitor& monitor() const { return monitor_; }
  /// Current (possibly adapted) task size.
  [[nodiscard]] std::uint32_t tasklets_per_task() const { return tasklets_per_task_; }

 private:
  RunReport drive(wq::Master& master);
  void top_up(wq::Master& master);
  void submit_analysis(wq::Master& master,
                       const std::vector<std::uint64_t>& ids);
  void submit_merges(wq::Master& master, bool final_sweep);
  void handle_result(wq::Master& master, const wq::TaskResult& result);
  void adapt_task_size();
  double now_seconds() const;

  WorkflowConfig config_;
  AnalysisPayload analysis_;
  MergePayload merge_;
  Db db_;
  Monitor monitor_;
  std::uint32_t tasklets_per_task_;
  std::size_t in_flight_ = 0;
  std::map<std::uint64_t, MergeGroup> active_merges_;  // task id -> group
  std::vector<std::string> merged_files_;
  std::size_t exhausted_ = 0;  ///< tasklets past max_attempts
  // Sliding window for adaptive sizing.
  std::vector<bool> recent_evictions_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace lobster::core

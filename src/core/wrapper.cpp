#include "core/wrapper.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>

namespace lobster::core {

namespace {
double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

void put_time(wq::TaskContext& ctx, const char* key, double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9f", seconds);
  ctx.outputs[key] = buf;
}
}  // namespace

std::function<int(wq::TaskContext&)> make_wrapper(WrapperStages stages) {
  return [stages = std::move(stages)](wq::TaskContext& ctx) -> int {
    using wq::TaskExit;
    auto timed_bool = [&ctx](const std::function<bool(wq::TaskContext&)>& fn,
                             const char* key) -> bool {
      if (!fn) {
        put_time(ctx, key, 0.0);
        return true;
      }
      const auto t0 = std::chrono::steady_clock::now();
      const bool ok = fn(ctx);
      put_time(ctx, key, seconds_since(t0));
      return ok;
    };

    // Machine compatibility check folds into environment setup time.
    const auto env0 = std::chrono::steady_clock::now();
    if (stages.check_machine && !stages.check_machine(ctx)) {
      put_time(ctx, wrapper_keys::kEnvSetup, seconds_since(env0));
      return static_cast<int>(TaskExit::EnvironmentFailure);
    }
    if (stages.setup_environment && !stages.setup_environment(ctx)) {
      put_time(ctx, wrapper_keys::kEnvSetup, seconds_since(env0));
      return static_cast<int>(TaskExit::EnvironmentFailure);
    }
    put_time(ctx, wrapper_keys::kEnvSetup, seconds_since(env0));
    if (ctx.cancel.cancelled()) return static_cast<int>(TaskExit::Evicted);

    if (!timed_bool(stages.stage_in, wrapper_keys::kStageIn))
      return static_cast<int>(TaskExit::StageInFailure);
    if (ctx.cancel.cancelled()) return static_cast<int>(TaskExit::Evicted);

    {
      const auto t0 = std::chrono::steady_clock::now();
      const int code = stages.execute ? stages.execute(ctx) : 0;
      put_time(ctx, wrapper_keys::kExecute, seconds_since(t0));
      if (ctx.cancel.cancelled()) return static_cast<int>(TaskExit::Evicted);
      if (code != 0) return code;
    }

    if (!timed_bool(stages.stage_out, wrapper_keys::kStageOut))
      return static_cast<int>(TaskExit::StageOutFailure);
    if (ctx.cancel.cancelled()) return static_cast<int>(TaskExit::Evicted);

    if (!timed_bool(stages.cleanup, wrapper_keys::kCleanup))
      return static_cast<int>(TaskExit::WrapperFailure);
    return static_cast<int>(TaskExit::Success);
  };
}

void fill_record_from_result(const wq::TaskResult& result,
                             TaskRecord& record) {
  auto get = [&result](const char* key) -> double {
    const auto it = result.outputs.find(key);
    if (it == result.outputs.end()) return 0.0;
    return std::strtod(it->second.c_str(), nullptr);
  };
  auto seg = [&record](Segment s) -> double& {
    return record.segment_time[static_cast<std::size_t>(s)];
  };
  record.worker = result.worker_name;
  record.exit_code = result.exit_code;
  seg(Segment::Dispatch) = result.dispatch_time;
  seg(Segment::EnvSetup) = get(wrapper_keys::kEnvSetup);
  seg(Segment::StageIn) = get(wrapper_keys::kStageIn);
  seg(Segment::Execute) = get(wrapper_keys::kExecute);
  seg(Segment::ExecuteIo) = get(wrapper_keys::kIoSeconds);
  seg(Segment::StageOut) = get(wrapper_keys::kStageOut);
  seg(Segment::Cleanup) = get(wrapper_keys::kCleanup);
  const double cpu = get(wrapper_keys::kCpuSeconds);
  record.cpu_time = cpu > 0.0 ? cpu : seg(Segment::Execute);
  if (result.evicted) {
    record.status = TaskStatus::Evicted;
    // Everything the task did before eviction is lost work.
    record.lost_time = seg(Segment::EnvSetup) + seg(Segment::StageIn) +
                       seg(Segment::Execute) + seg(Segment::StageOut);
    record.cpu_time = 0.0;
  } else {
    record.status =
        result.exit_code == 0 ? TaskStatus::Done : TaskStatus::Failed;
  }
  record.outputs_bytes = get(wrapper_keys::kOutputBytes);
}

}  // namespace lobster::core

// config.hpp — the user-facing workflow configuration (paper §3: "The user
// provides a configuration file which describes the input data sources and
// the analysis code which is to be run on each input data source").
#pragma once

#include <cstdint>
#include <string>

#include "core/merge.hpp"
#include "util/config.hpp"

namespace lobster::core {

enum class DataAccessMode : std::uint8_t {
  Stream,  ///< XrootD: read as you go (Lobster's primary mode)
  Stage,   ///< WQ/Chirp: copy inputs before execution
};
const char* to_string(DataAccessMode m);

struct WorkflowConfig {
  std::string label = "workflow";
  std::string dataset;                 ///< DBS dataset name ("" = simulation)
  std::uint32_t lumis_per_tasklet = 5;
  std::uint32_t tasklets_per_task = 6;  ///< ~1 h at 10 min/tasklet
  std::size_t task_buffer = 400;        ///< dispatch buffer (paper §4.1)
  std::uint32_t max_attempts = 10;      ///< per-tasklet retry cap
  DataAccessMode access = DataAccessMode::Stream;
  MergeMode merge_mode = MergeMode::Interleaved;
  MergePolicy merge_policy;
  bool adaptive_sizing = false;         ///< §8 future-work feature
  double output_ratio = 0.05;           ///< output/input volume

  /// Parse from an INI config:
  ///   [workflow]
  ///   label = ttbar
  ///   dataset = /SingleMu/Run2015A/AOD
  ///   lumis_per_tasklet = 5
  ///   tasklets_per_task = 6
  ///   task_buffer = 400
  ///   max_attempts = 10
  ///   access = stream | stage
  ///   merge = interleaved | sequential | hadoop
  ///   merge_size = 3.5GB
  ///   adaptive_sizing = false
  /// Throws std::runtime_error on unknown enum values.
  static WorkflowConfig from_config(const util::Config& cfg,
                                    const std::string& section = "workflow");
};

}  // namespace lobster::core

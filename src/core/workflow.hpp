// workflow.hpp — work decomposition (paper §4.1).
//
// Terms, exactly as the paper defines them:
//  * A **tasklet** is the smallest element into which the overall workflow
//    can be divided and still be submitted as a self-contained piece of
//    work.  The complete list of tasklets is created at the beginning of
//    the workflow.
//  * A **task** is a group of tasklets assigned to run on a single worker
//    core.  Tasks are created and assigned dynamically.
//  * A **workflow** can be divided into tasks of any integer number of
//    tasklets; the task size is set by the user and can be adjusted over
//    the course of the run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dbs/dbs.hpp"

namespace lobster::core {

/// Lifecycle of a tasklet in the Lobster DB.
enum class TaskletStatus : std::uint8_t {
  Pending,    ///< not yet part of a running task
  Assigned,   ///< inside a dispatched task
  Processed,  ///< analysis done, output file exists
  Merged,     ///< output absorbed into a merged file
  Failed,     ///< permanently failed (attempts exhausted)
};

const char* to_string(TaskletStatus s);

/// The smallest self-contained piece of work: a slice of one input file.
struct Tasklet {
  std::uint64_t id = 0;
  std::string input_lfn;
  dbs::Lumisection first_lumi;
  dbs::Lumisection last_lumi;
  std::uint64_t events = 0;
  double input_bytes = 0.0;
  /// Expected output volume (paper §4.2: output is at least an order of
  /// magnitude smaller than the processed input).
  double expected_output_bytes = 0.0;
};

/// Decomposition parameters.
struct DecompositionSpec {
  /// Lumisections per tasklet (the finest practical granularity).
  std::uint32_t lumis_per_tasklet = 5;
  /// Output/input volume ratio for expected_output_bytes.
  double output_ratio = 0.05;
};

/// Split a dataset into the complete tasklet list (created once, at the
/// beginning of the workflow).  Tasklets never span input files.
std::vector<Tasklet> decompose(const dbs::Dataset& dataset,
                               const DecompositionSpec& spec);

/// A simulation workflow has no input dataset: tasklets are "generate N
/// events" units.
std::vector<Tasklet> decompose_simulation(std::uint64_t total_events,
                                          std::uint64_t events_per_tasklet,
                                          double bytes_per_event);

}  // namespace lobster::core

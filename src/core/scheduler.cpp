#include "core/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <set>
#include <stdexcept>

#include "util/log.hpp"

namespace lobster::core {

namespace {
constexpr std::size_t kAdaptWindow = 50;
constexpr double kAdaptHighEvictionRate = 0.30;
constexpr double kAdaptLowEvictionRate = 0.05;
constexpr int kMaxMergeSweeps = 5;
}  // namespace

Scheduler::Scheduler(WorkflowConfig config, AnalysisPayload analysis,
                     MergePayload merge)
    : config_(std::move(config)),
      analysis_(std::move(analysis)),
      merge_(std::move(merge)),
      monitor_(60.0),
      tasklets_per_task_(config_.tasklets_per_task) {
  if (!analysis_) throw std::invalid_argument("scheduler: null analysis payload");
  if (config_.merge_mode != MergeMode::Hadoop && !merge_)
    throw std::invalid_argument("scheduler: null merge payload");
}

double Scheduler::now_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

RunReport Scheduler::run(wq::Master& master, std::vector<Tasklet> tasklets) {
  db_.register_tasklets(tasklets);
  LOBSTER_LOG_INFO("lobster", "workflow '%s': %zu tasklets, task size %u",
                   config_.label.c_str(), tasklets.size(),
                   tasklets_per_task_);
  return drive(master);
}

RunReport Scheduler::resume(wq::Master& master, Db recovered) {
  db_ = std::move(recovered);
  const std::size_t lost = db_.recover_in_flight();
  LOBSTER_LOG_INFO("lobster",
                   "workflow '%s': resumed from journal, %zu in-flight tasks "
                   "recovered as evicted",
                   config_.label.c_str(), lost);
  return drive(master);
}

RunReport Scheduler::drive(wq::Master& master) {
  start_ = std::chrono::steady_clock::now();
  top_up(master);

  int merge_sweeps = 0;
  while (true) {
    if (in_flight_ == 0) {
      top_up(master);
      if (in_flight_ == 0) {
        // Analysis is complete (or exhausted).  Merge what remains.
        const bool merging_here = config_.merge_mode != MergeMode::Hadoop;
        if (merging_here && merge_sweeps < kMaxMergeSweeps &&
            !db_.unmerged_outputs().empty()) {
          ++merge_sweeps;
          submit_merges(master, /*final_sweep=*/true);
        }
        if (in_flight_ == 0) break;
      }
    }
    auto result = master.next_result();
    if (!result) break;
    handle_result(master, *result);
  }
  master.close_submission();

  RunReport report;
  report.tasklets_total = db_.num_tasklets();
  const auto counts = db_.tasklet_status_counts();
  for (const auto& [status, n] : counts) {
    if (status == TaskletStatus::Processed || status == TaskletStatus::Merged)
      report.tasklets_processed += n;
    if (status == TaskletStatus::Failed) report.tasklets_failed += n;
  }
  for (std::uint64_t id = 1; id <= db_.num_tasks(); ++id) {
    const auto& rec = db_.task(id);
    if (rec.kind == TaskKind::Analysis)
      ++report.analysis_tasks;
    else
      ++report.merge_tasks;
  }
  report.evictions = monitor_.tasks_evicted();
  report.failures = monitor_.tasks_failed();
  report.merged_files = merged_files_;
  report.breakdown = monitor_.breakdown();
  return report;
}

void Scheduler::top_up(wq::Master& master) {
  while (in_flight_ < config_.task_buffer) {
    const auto ids = db_.pending_tasklets(tasklets_per_task_);
    if (ids.empty()) break;
    std::vector<std::uint64_t> good;
    for (std::uint64_t id : ids) {
      if (db_.tasklet_attempts(id) >= config_.max_attempts) {
        db_.mark_tasklet_failed(id);
        ++exhausted_;
        LOBSTER_LOG_WARN("lobster", "tasklet %llu exhausted its attempts",
                         static_cast<unsigned long long>(id));
      } else {
        good.push_back(id);
      }
    }
    if (good.empty()) continue;  // all exhausted; look at the next batch
    submit_analysis(master, good);
  }
  // Interleaved merging runs concurrently with analysis.
  if (config_.merge_mode == MergeMode::Interleaved)
    submit_merges(master, /*final_sweep=*/false);
}

void Scheduler::submit_analysis(wq::Master& master,
                                const std::vector<std::uint64_t>& ids) {
  std::vector<Tasklet> tasklets;
  tasklets.reserve(ids.size());
  for (std::uint64_t id : ids) tasklets.push_back(db_.tasklet(id));
  const std::uint64_t task_id =
      db_.create_task(TaskKind::Analysis, ids, now_seconds());
  wq::TaskSpec spec;
  spec.id = task_id;
  spec.tag = "analysis";
  spec.work = make_wrapper(analysis_(tasklets));
  for (const auto& t : tasklets) spec.sandbox_bytes += t.input_bytes * 0.001;
  master.submit(std::move(spec));
  ++in_flight_;
}

void Scheduler::submit_merges(wq::Master& master, bool final_sweep) {
  if (!final_sweep && !interleave_ready(db_, config_.merge_policy)) return;
  // Candidates: unmerged outputs not already reserved by an active merge.
  std::set<std::uint64_t> reserved;
  for (const auto& [task_id, group] : active_merges_)
    reserved.insert(group.output_ids.begin(), group.output_ids.end());
  std::vector<OutputRecord> candidates;
  for (const auto& out : db_.unmerged_outputs())
    if (!reserved.count(out.output_id)) candidates.push_back(out);
  if (candidates.empty()) return;

  const auto groups =
      plan_merges(candidates, config_.merge_policy, /*only_full=*/!final_sweep,
                  db_.num_tasks());
  for (const auto& group : groups) {
    std::vector<OutputRecord> outputs;
    outputs.reserve(group.output_ids.size());
    for (std::uint64_t oid : group.output_ids)
      outputs.push_back(db_.output(oid));
    const std::uint64_t task_id =
        db_.create_task(TaskKind::Merge, group.output_ids, now_seconds());
    wq::TaskSpec spec;
    spec.id = task_id;
    spec.tag = "merge";
    spec.work = make_wrapper(merge_(group, outputs));
    master.submit(std::move(spec));
    active_merges_.emplace(task_id, group);
    ++in_flight_;
  }
}

void Scheduler::handle_result(wq::Master& master,
                              const wq::TaskResult& result) {
  --in_flight_;
  TaskRecord rec;
  fill_record_from_result(result, rec);
  rec.finish_time = now_seconds();
  db_.finish_task(result.id, rec);
  // Re-read: finish_task merged identity fields (kind, tasklets).
  const TaskRecord& stored = db_.task(result.id);
  monitor_.on_task_finished(stored);

  const auto merge_it = active_merges_.find(result.id);
  if (merge_it != active_merges_.end()) {
    if (stored.status == TaskStatus::Done) {
      db_.mark_merged(merge_it->second.output_ids);
      merged_files_.push_back(merge_it->second.merged_path);
    }
    // On failure/eviction the outputs simply return to the unmerged pool.
    active_merges_.erase(merge_it);
  } else if (stored.status == TaskStatus::Done) {
    // Successful analysis task: register its output file.
    char buf[64];
    std::snprintf(buf, sizeof buf, "out/task_%06llu.root",
                  static_cast<unsigned long long>(result.id));
    double bytes = stored.outputs_bytes;
    if (bytes <= 0.0) {
      // Fall back to the expected output volume of the tasklets.
      for (std::uint64_t tid : stored.tasklets)
        bytes += db_.tasklet(tid).expected_output_bytes;
    }
    db_.record_output(result.id, buf, bytes);
  }

  if (config_.adaptive_sizing && stored.kind == TaskKind::Analysis) {
    recent_evictions_.push_back(stored.status == TaskStatus::Evicted);
    adapt_task_size();
  }
  top_up(master);
}

void Scheduler::adapt_task_size() {
  if (recent_evictions_.size() < kAdaptWindow) return;
  std::size_t evictions = 0;
  for (bool e : recent_evictions_) evictions += e;
  const double rate =
      static_cast<double>(evictions) / static_cast<double>(recent_evictions_.size());
  const std::uint32_t before = tasklets_per_task_;
  if (rate > kAdaptHighEvictionRate) {
    tasklets_per_task_ = std::max<std::uint32_t>(1, tasklets_per_task_ / 2);
  } else if (rate < kAdaptLowEvictionRate) {
    tasklets_per_task_ = std::min<std::uint32_t>(config_.tasklets_per_task * 4,
                                                 tasklets_per_task_ + 1);
  }
  if (tasklets_per_task_ != before)
    LOBSTER_LOG_INFO("lobster",
                     "adaptive sizing: eviction rate %.2f, task size %u -> %u",
                     rate, before, tasklets_per_task_);
  recent_evictions_.clear();
}

}  // namespace lobster::core

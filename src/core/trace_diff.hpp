// trace_diff.hpp — attribute a metric delta between two runs to the
// lifecycle segment that moved (paper §5's compare-two-runs workflow).
//
// The operators in the paper — and the 200 Gbps Coffea-casa campaign after
// them — tuned the facility by running a configuration twice and asking
// *where the time went*: which wrapper segment absorbed the goodput or
// makespan difference.  This module does that arithmetic over replayed
// TaskRecords (core/trace_replay.hpp): each run is reduced to wall seconds
// per attribution bucket, the buckets are diffed, and the movers come back
// ranked by |delta| with their share of the total movement.
//
// Attribution buckets follow the Figure 8 accounting: the seven wrapper
// segments count successful tasks only, while the whole wall time of a
// failed or evicted task lands in "failed" and the discarded runtime of
// successful tasks lands in "lost".  That way a squid collapse shows up as
// an env_setup mover, an outage as a failed mover, and oversized tasks as a
// lost mover — exactly the categories the diagnosis rules speak.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/db.hpp"
#include "util/histogram.hpp"

namespace lobster::core {

/// Buckets a run's wall time is attributed to: the seven wrapper segments
/// (successful tasks), plus "failed" (all wall of failed/evicted tasks)
/// and "lost" (eviction-discarded runtime of successful tasks).
constexpr std::size_t kNumDiffBuckets = kNumSegments + 2;
constexpr std::size_t kBucketFailed = kNumSegments;
constexpr std::size_t kBucketLost = kNumSegments + 1;
/// "dispatch" ... "cleanup", "failed", "lost".
const char* diff_bucket_name(std::size_t bucket);

/// One run reduced to the attribution plane.
struct RunAttribution {
  std::string label;
  std::uint64_t tasks = 0;
  std::uint64_t failures = 0;  ///< failed + evicted task records
  std::uint64_t tasklets_processed = 0;
  double makespan = 0.0;  ///< latest finish_time over all records
  /// Tasklets per hour of makespan (the fig14 goodput convention).
  double goodput = 0.0;
  std::array<double, kNumDiffBuckets> bucket_seconds{};
};

/// Reduce replayed records to per-bucket wall seconds and headline metrics.
[[nodiscard]] RunAttribution attribute_records(
    const std::vector<TaskRecord>& records, std::string label);

/// One bucket's movement between two runs.
struct DiffMover {
  std::string bucket;
  double before = 0.0;  ///< seconds in run A
  double after = 0.0;   ///< seconds in run B
  double delta = 0.0;   ///< after - before
  double share = 0.0;   ///< |delta| / sum of all |delta| (0 when no movement)
};

/// Per-bucket span-time distributions of both runs on shared edges, so the
/// histograms are directly comparable bin by bin.
struct BucketHistograms {
  std::string bucket;
  util::Histogram before;
  util::Histogram after;
};

/// The full comparison: headline deltas plus every bucket ranked by how
/// much of the movement it explains.
struct TraceDiff {
  RunAttribution a;
  RunAttribution b;
  double makespan_delta = 0.0;  ///< b - a
  double goodput_delta = 0.0;   ///< b - a
  /// All buckets, |delta| descending (ties broken by bucket index).
  std::vector<DiffMover> movers;
  /// Per-task span-time histograms per bucket, shared edges across runs.
  std::vector<BucketHistograms> histograms;
};

/// Diff two runs' replayed records.  `hist_bins` sets the resolution of the
/// per-bucket histograms (their range spans both runs' observations).
[[nodiscard]] TraceDiff diff_task_records(const std::vector<TaskRecord>& a,
                                          const std::vector<TaskRecord>& b,
                                          std::string label_a,
                                          std::string label_b,
                                          std::size_t hist_bins = 20);

}  // namespace lobster::core

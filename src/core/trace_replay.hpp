// trace_replay.hpp — rebuild analysis state from a structured trace.
//
// A traced run (Engine::enable_tracing, lobster_sim --trace) records every
// task's lifecycle as a span whose END event carries the authoritative
// TaskRecord numbers: status, exit code, tasklet count, cpu/lost time and
// all seven per-segment times.  That makes the trace file self-sufficient
// for offline analysis — this module turns the event stream back into
// core::TaskRecords (feedable to core::Monitor for the Figure 8 breakdown
// and the §5 diagnosis) plus the final counter-plane snapshot, without any
// access to the simulation that produced it.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "core/db.hpp"
#include "util/trace.hpp"

namespace lobster::core {

/// Everything recoverable from one run's trace.
struct TraceReplay {
  /// One record per task span (cat "task" whose end event carries a
  /// "status" arg), in finish order.  Only the fields the Monitor and the
  /// report consume are populated: kind, status, exit_code, submit/finish
  /// times, segment times, cpu_time, lost_time and the tasklet count
  /// (synthesised ids — the trace stores the count, not the id list).
  std::vector<TaskRecord> records;
  /// Final value of every counter/gauge emitted at end of run, name-ordered
  /// (last write wins when a counter appears more than once).
  std::vector<std::pair<std::string, double>> final_counters;
  /// Task spans still open when the trace ended — non-zero means the run
  /// was truncated (time cap) with tasks in flight.
  std::size_t open_spans = 0;
};

/// Reconstruct records and counters from a parsed trace.  Events must be in
/// file order (as util::parse_trace_jsonl returns them).
[[nodiscard]] TraceReplay replay_trace(
    const std::vector<util::TraceEvent>& events);

/// Convenience: read + parse + replay a JSONL trace file.  Throws
/// std::runtime_error on unreadable or malformed input.
[[nodiscard]] TraceReplay replay_trace_file(const std::string& path);

}  // namespace lobster::core

#include "core/trace_replay.hpp"

#include <algorithm>
#include <cstdint>
#include <map>

namespace lobster::core {

namespace {
/// Segment index for an end-event arg key, or kNumSegments when the key is
/// not a segment name.
std::size_t segment_index(const std::string& key) {
  for (std::size_t s = 0; s < kNumSegments; ++s)
    if (key == to_string(static_cast<Segment>(s))) return s;
  return kNumSegments;
}
}  // namespace

TraceReplay replay_trace(const std::vector<util::TraceEvent>& events) {
  TraceReplay out;
  // Open task spans by track: one slot runs one task at a time, so a plain
  // begin-time per (track, name) pair suffices — no stack needed.
  std::map<std::pair<std::uint64_t, std::string>, double> open;
  std::map<std::string, double> counters;

  for (const auto& ev : events) {
    if (ev.phase == 'C') {
      counters[ev.name] = ev.value;
      continue;
    }
    if (ev.cat != "task") continue;
    const auto key = std::make_pair(ev.track, ev.name);
    if (ev.phase == 'B') {
      open[key] = ev.t;
      continue;
    }
    if (ev.phase != 'E') continue;
    const auto it = open.find(key);
    const double begin = it != open.end() ? it->second : ev.t;
    if (it != open.end()) open.erase(it);

    // Only spans stamped with the task outcome become records; auxiliary
    // task-cat spans (e.g. hadoop reducers) carry no "status" arg.
    const double status = ev.arg("status", -1.0);
    if (status < 0.0) continue;

    TaskRecord rec;
    rec.task_id = static_cast<std::uint64_t>(out.records.size() + 1);
    rec.kind = ev.name == "merge" ? TaskKind::Merge : TaskKind::Analysis;
    rec.status = static_cast<TaskStatus>(static_cast<int>(status));
    rec.exit_code = static_cast<int>(ev.arg("exit", 0.0));
    rec.submit_time = begin;
    rec.finish_time = ev.t;
    rec.cpu_time = ev.arg("cpu", 0.0);
    rec.lost_time = ev.arg("lost", 0.0);
    for (const auto& [key2, value] : ev.args) {
      const std::size_t s = segment_index(key2);
      if (s < kNumSegments) rec.segment_time[s] = value;
    }
    // The trace records the count, not the id list; synthesise ids so
    // consumers that only size() the vector still work.
    const auto n = static_cast<std::size_t>(ev.arg("tasklets", 0.0));
    rec.tasklets.resize(n);
    for (std::size_t i = 0; i < n; ++i) rec.tasklets[i] = i + 1;
    out.records.push_back(std::move(rec));
  }

  out.open_spans = open.size();
  out.final_counters.assign(counters.begin(), counters.end());
  return out;
}

TraceReplay replay_trace_file(const std::string& path) {
  return replay_trace(util::read_trace_jsonl(path));
}

}  // namespace lobster::core

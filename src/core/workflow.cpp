#include "core/workflow.hpp"

#include <stdexcept>

namespace lobster::core {

const char* to_string(TaskletStatus s) {
  switch (s) {
    case TaskletStatus::Pending: return "pending";
    case TaskletStatus::Assigned: return "assigned";
    case TaskletStatus::Processed: return "processed";
    case TaskletStatus::Merged: return "merged";
    case TaskletStatus::Failed: return "failed";
  }
  return "?";
}

std::vector<Tasklet> decompose(const dbs::Dataset& dataset,
                               const DecompositionSpec& spec) {
  if (spec.lumis_per_tasklet == 0)
    throw std::invalid_argument("decompose: lumis_per_tasklet must be > 0");
  if (spec.output_ratio < 0.0)
    throw std::invalid_argument("decompose: negative output ratio");

  std::vector<Tasklet> out;
  std::uint64_t next_id = 1;
  for (const auto& file : dataset.files) {
    if (file.lumis.empty()) continue;
    const std::size_t n = file.lumis.size();
    // Even byte/event split across the file's tasklets.
    for (std::size_t begin = 0; begin < n; begin += spec.lumis_per_tasklet) {
      const std::size_t end = std::min(
          begin + static_cast<std::size_t>(spec.lumis_per_tasklet), n);
      Tasklet t;
      t.id = next_id++;
      t.input_lfn = file.lfn;
      t.first_lumi = file.lumis[begin];
      t.last_lumi = file.lumis[end - 1];
      const double frac =
          static_cast<double>(end - begin) / static_cast<double>(n);
      t.events = static_cast<std::uint64_t>(
          static_cast<double>(file.events) * frac);
      t.input_bytes = file.size_bytes * frac;
      t.expected_output_bytes = t.input_bytes * spec.output_ratio;
      out.push_back(std::move(t));
    }
  }
  return out;
}

std::vector<Tasklet> decompose_simulation(std::uint64_t total_events,
                                          std::uint64_t events_per_tasklet,
                                          double bytes_per_event) {
  if (events_per_tasklet == 0)
    throw std::invalid_argument("decompose: events_per_tasklet must be > 0");
  std::vector<Tasklet> out;
  std::uint64_t next_id = 1;
  for (std::uint64_t done = 0; done < total_events;
       done += events_per_tasklet) {
    Tasklet t;
    t.id = next_id++;
    t.input_lfn = "";  // generated, not read
    t.events = std::min<std::uint64_t>(events_per_tasklet,
                                       total_events - done);
    t.input_bytes = 0.0;
    t.expected_output_bytes =
        static_cast<double>(t.events) * bytes_per_event;
    out.push_back(std::move(t));
  }
  return out;
}

}  // namespace lobster::core

// monitor.hpp — performance monitoring and diagnosis (paper §5).
//
// "Due to the large number of interacting components in Lobster,
// troubleshooting problems can be very challenging. ... we have implemented
// a comprehensive monitoring system that covers almost every aspect of the
// system and the infrastructure."
//
// The Monitor ingests finished TaskRecords plus infrastructure gauges and
// provides:
//  * run timelines — tasks running / completed / failed per time bin and the
//    CPU/wall efficiency ratio (Figures 10 and 11);
//  * the runtime breakdown table — CPU / I/O / failed / stage-in / stage-out
//    (Figure 8);
//  * a diagnosis advisor encoding the troubleshooting rules the paper lists:
//      - high lost runtime            -> target task size too high
//      - long sandbox stage-in / wait -> use more foremen
//      - consistently long setup      -> overloaded squid proxy
//      - long stage-in and stage-out  -> overloaded Chirp server.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/db.hpp"
#include "util/histogram.hpp"
#include "util/stats.hpp"

namespace lobster::core {

/// The Figure 8 table: wall time attributed to each phase across the run.
struct RuntimeBreakdown {
  double cpu = 0.0;        ///< "Task CPU Time"
  double io = 0.0;         ///< "Task I/O Time" (streaming reads inside run)
  double failed = 0.0;     ///< wall time of failed tasks
  /// Subset of `failed`: wall of tasks that exited non-zero (infrastructure
  /// failures), excluding evictions.  Not part of total().  The
  /// failure-burst rule keys on this so the opportunistic climate's routine
  /// evictions do not read as an outage.
  double hard_failed = 0.0;
  double stage_in = 0.0;   ///< "WQ Stage In" (sandbox + input staging)
  double stage_out = 0.0;  ///< "WQ Stage Out"
  double other = 0.0;      ///< env setup, dispatch, cleanup
  [[nodiscard]] double total() const {
    return cpu + io + failed + stage_in + stage_out + other;
  }
};

/// Which §5 troubleshooting rule fired.  The online advisor
/// (lobsim::Advisor) keys its actuation off this, so the mapping from
/// symptom to intervention is explicit rather than string-matched.
enum class DiagnosisRule : std::uint8_t {
  LostRuntime,   ///< lost / total wall too high — task size too large
  DispatchWait,  ///< sandbox stage-in / dispatch wait — need more foremen
  SetupTime,     ///< env setup — overloaded squid proxy
  Staging,       ///< stage-in + stage-out — overloaded Chirp server
  FailureBurst,  ///< failed-task wall — transient infrastructure outage
};
const char* to_string(DiagnosisRule r);

/// One diagnosis from the advisor.
struct Diagnosis {
  std::string symptom;
  std::string advice;
  double severity = 0.0;  ///< 0..1, how far past the trigger threshold
  DiagnosisRule rule = DiagnosisRule::LostRuntime;
};

/// Tunable trigger thresholds for the advisor.
struct AdvisorThresholds {
  double lost_fraction = 0.10;       ///< lost / total wall
  double dispatch_fraction = 0.05;   ///< dispatch wait / total wall
  double setup_fraction = 0.15;      ///< env setup / total wall
  double staging_fraction = 0.25;    ///< (stage_in + stage_out) / total wall
  double failed_fraction = 0.20;     ///< failed-task wall / total wall
};

/// The §5 rules as a pure function over an aggregated breakdown — callable
/// on the cumulative run totals (Monitor::diagnose) or on a windowed delta
/// (the online advisor diffs two breakdown snapshots per tick).  `lost` and
/// `dispatch` are the lost-runtime and dispatch-wait wall sums over the
/// same window.  Results are sorted by severity, descending.
std::vector<Diagnosis> diagnose_breakdown(const RuntimeBreakdown& breakdown,
                                          double lost, double dispatch,
                                          const AdvisorThresholds& thresholds);

class Monitor {
 public:
  /// `bin_seconds` sets the timeline resolution.
  explicit Monitor(double bin_seconds = 600.0);

  // ---- ingest ---------------------------------------------------------------

  /// Record a finished task (status must be terminal).
  void on_task_finished(const TaskRecord& record);
  /// Record an instantaneous gauge of concurrently running tasks.
  void sample_running(double now, std::size_t running);

  // ---- queries ---------------------------------------------------------------

  [[nodiscard]] RuntimeBreakdown breakdown() const { return breakdown_; }
  [[nodiscard]] std::uint64_t tasks_seen() const { return seen_; }
  [[nodiscard]] std::uint64_t tasks_failed() const { return failures_; }
  [[nodiscard]] std::uint64_t tasks_evicted() const { return evictions_; }
  /// Wall sums the diagnosis rules consume alongside the breakdown; exposed
  /// so the online advisor can window them (delta between two ticks).
  [[nodiscard]] double lost_time() const { return lost_; }
  [[nodiscard]] double dispatch_time() const { return dispatch_; }

  [[nodiscard]] const util::TimeSeries& completed_timeline() const {
    return completed_;
  }
  [[nodiscard]] const util::TimeSeries& failed_timeline() const {
    return failed_;
  }
  [[nodiscard]] const util::TimeSeries& running_timeline() const {
    return running_;
  }
  /// CPU-time/wall-clock ratio per bin (the bottom panel of Figure 10).
  /// Bins with no finished wall time report 0, not NaN.
  [[nodiscard]] std::vector<double> efficiency_timeline() const;
  /// Mean env-setup time per completion bin (second panel of Figure 11).
  /// Empty bins report 0, not NaN.
  [[nodiscard]] std::vector<double> setup_time_timeline() const;
  /// Mean stage-out time per completion bin (third panel of Figure 11).
  /// Empty bins report 0, not NaN.
  [[nodiscard]] std::vector<double> stageout_time_timeline() const;

  /// Run the §5 rules against the aggregated statistics.
  std::vector<Diagnosis> diagnose(const AdvisorThresholds& thresholds = {}) const;

 private:
  double bin_;
  RuntimeBreakdown breakdown_;
  std::uint64_t seen_ = 0;
  std::uint64_t failures_ = 0;
  std::uint64_t evictions_ = 0;
  double lost_ = 0.0;
  double dispatch_ = 0.0;
  util::TimeSeries completed_;
  util::TimeSeries failed_;
  util::TimeSeries running_;
  util::TimeSeries cpu_in_bin_;
  util::TimeSeries wall_in_bin_;
  util::TimeSeries setup_in_bin_;
  util::TimeSeries setup_count_;
  util::TimeSeries stageout_in_bin_;
  util::TimeSeries stageout_count_;
};

}  // namespace lobster::core

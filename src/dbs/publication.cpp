#include "dbs/publication.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace lobster::dbs {

OutputFileMeta merge_metadata(const std::string& merged_lfn,
                              const std::vector<OutputFileMeta>& parts) {
  if (parts.empty())
    throw std::invalid_argument("publication: merging empty part list");
  OutputFileMeta out;
  out.lfn = merged_lfn;
  std::set<std::string> parents;
  std::set<Lumisection> lumis;
  for (const auto& p : parts) {
    out.size_bytes += p.size_bytes;
    out.events += p.events;
    parents.insert(p.parent_lfns.begin(), p.parent_lfns.end());
    lumis.insert(p.lumis.begin(), p.lumis.end());
  }
  out.parent_lfns.assign(parents.begin(), parents.end());
  out.lumis.assign(lumis.begin(), lumis.end());
  return out;
}

Dataset publish_outputs(DatasetBookkeeping& dbs, const std::string& name,
                        const std::vector<OutputFileMeta>& files) {
  if (files.empty())
    throw std::invalid_argument("publication: no files to publish");
  Dataset ds;
  ds.name = name;
  ds.files.reserve(files.size());
  for (const auto& f : files) {
    if (f.lfn.empty())
      throw std::invalid_argument("publication: file without LFN");
    DataFile df;
    df.lfn = f.lfn;
    df.size_bytes = f.size_bytes;
    df.events = f.events;
    df.lumis = f.lumis;
    std::sort(df.lumis.begin(), df.lumis.end());
    ds.files.push_back(std::move(df));
  }
  dbs.publish(ds);
  return ds;
}

PublicationCost estimate_publication_cost(
    const std::vector<OutputFileMeta>& files,
    const PublicationCostModel& model) {
  PublicationCost cost;
  cost.files = files.size();
  for (const auto& f : files) {
    cost.lumi_records += f.lumis.size();
    cost.metadata_bytes += model.bytes_per_file_record;
    cost.metadata_bytes +=
        model.bytes_per_lumi_record * static_cast<double>(f.lumis.size());
    cost.metadata_bytes += model.bytes_per_parent_edge *
                           static_cast<double>(f.parent_lfns.size());
  }
  cost.injection_seconds =
      model.seconds_per_file * static_cast<double>(cost.files) +
      model.seconds_per_kilobyte * cost.metadata_bytes / 1000.0;
  return cost;
}

}  // namespace lobster::dbs

// publication.hpp — publishing workflow outputs back into the bookkeeping
// service.
//
// Paper §4.4: small per-task outputs "could be published as-is, [but] it
// would require a significant amount of metadata, which increases the
// expense of publication and further handling.  To offset these penalties,
// we implemented several ways to merge completed output files up to a
// desired file size."  This module is that publication step: it assembles
// an output Dataset with per-file provenance (parent LFNs, carried-over
// lumisections) and prices the metadata cost, so the merged-vs-unmerged
// trade-off is measurable.
#pragma once

#include <string>
#include <vector>

#include "dbs/dbs.hpp"

namespace lobster::dbs {

/// One output file to publish, with its provenance.
struct OutputFileMeta {
  std::string lfn;
  double size_bytes = 0.0;
  std::uint64_t events = 0;
  /// Input files this output was derived from (merged outputs carry the
  /// union of their constituents' parents).
  std::vector<std::string> parent_lfns;
  /// Lumisections covered (from the parents; used for data certification).
  std::vector<Lumisection> lumis;
};

/// Combine the provenance of several outputs into the metadata of their
/// merged file (paper: merge tasks "also merge the associated metadata").
OutputFileMeta merge_metadata(const std::string& merged_lfn,
                              const std::vector<OutputFileMeta>& parts);

/// Assemble and register the output dataset; throws on duplicate names or
/// empty file lists.  Returns the published dataset.
Dataset publish_outputs(DatasetBookkeeping& dbs, const std::string& name,
                        const std::vector<OutputFileMeta>& files);

/// The cost of injecting a dataset into the bookkeeping service.  Dominated
/// by per-file records and per-file-per-lumi association rows — which is
/// why thousands of 10-100 MB files are expensive and 3-4 GB merged files
/// are not.
struct PublicationCost {
  std::size_t files = 0;
  std::size_t lumi_records = 0;
  double metadata_bytes = 0.0;
  double injection_seconds = 0.0;
};

struct PublicationCostModel {
  double bytes_per_file_record = 2048.0;
  double bytes_per_lumi_record = 96.0;
  double bytes_per_parent_edge = 128.0;
  double seconds_per_file = 0.8;     ///< server round trip per file record
  double seconds_per_kilobyte = 0.002;
};

PublicationCost estimate_publication_cost(
    const std::vector<OutputFileMeta>& files,
    const PublicationCostModel& model = {});

}  // namespace lobster::dbs

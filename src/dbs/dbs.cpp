#include "dbs/dbs.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace lobster::dbs {

double Dataset::total_bytes() const {
  double sum = 0.0;
  for (const auto& f : files) sum += f.size_bytes;
  return sum;
}

std::uint64_t Dataset::total_events() const {
  std::uint64_t sum = 0;
  for (const auto& f : files) sum += f.events;
  return sum;
}

std::size_t Dataset::total_lumis() const {
  std::size_t sum = 0;
  for (const auto& f : files) sum += f.lumis.size();
  return sum;
}

void DatasetBookkeeping::publish(Dataset dataset) {
  if (dataset.name.empty())
    throw std::invalid_argument("dbs: dataset name must not be empty");
  const auto [it, inserted] =
      catalog_.emplace(dataset.name, std::move(dataset));
  if (!inserted)
    throw std::invalid_argument("dbs: duplicate dataset " + it->first);
}

bool DatasetBookkeeping::has(const std::string& name) const {
  return catalog_.count(name) > 0;
}

std::optional<Dataset> DatasetBookkeeping::query(const std::string& name) const {
  const auto it = catalog_.find(name);
  if (it == catalog_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::string> DatasetBookkeeping::list() const {
  std::vector<std::string> out;
  out.reserve(catalog_.size());
  for (const auto& [name, _] : catalog_) out.push_back(name);
  return out;
}

std::vector<DataFile> DatasetBookkeeping::files(const std::string& name) const {
  const auto it = catalog_.find(name);
  if (it == catalog_.end()) return {};
  return it->second.files;
}

Dataset make_synthetic_dataset(const SyntheticDatasetSpec& spec,
                               util::Rng rng) {
  if (spec.num_files == 0)
    throw std::invalid_argument("dbs: num_files must be > 0");
  if (spec.mean_file_bytes <= 0.0 || spec.event_bytes <= 0.0)
    throw std::invalid_argument("dbs: sizes must be positive");

  Dataset ds;
  ds.name = spec.name;
  ds.files.reserve(spec.num_files);

  std::uint32_t run = spec.first_run;
  std::uint32_t lumi = 1;
  for (std::size_t i = 0; i < spec.num_files; ++i) {
    DataFile f;
    char buf[256];
    std::snprintf(buf, sizeof buf, "%s/file_%06zu.root", spec.name.c_str(), i);
    f.lfn = buf;
    // Lognormal sizes: sigma 0.25 keeps the spread realistic while the mean
    // matches the spec (mu adjusted for the lognormal mean shift).
    const double sigma = 0.25;
    const double mu = std::log(spec.mean_file_bytes) - 0.5 * sigma * sigma;
    f.size_bytes = rng.lognormal(mu, sigma);
    f.events = static_cast<std::uint64_t>(
        std::max(1.0, f.size_bytes / spec.event_bytes));
    const std::uint32_t nlumis =
        spec.lumis_per_file != 0
            ? spec.lumis_per_file
            : static_cast<std::uint32_t>(rng.uniform_int(20, 60));
    f.lumis.reserve(nlumis);
    for (std::uint32_t l = 0; l < nlumis; ++l) {
      f.lumis.push_back({run, lumi++});
      // Occasionally move to a new run, as real data-taking does.
      if (rng.chance(0.002)) {
        ++run;
        lumi = 1;
      }
    }
    ds.files.push_back(std::move(f));
  }
  return ds;
}

}  // namespace lobster::dbs

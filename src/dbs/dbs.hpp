// dbs.hpp — a Dataset Bookkeeping Service in the mould of the CMS DBS.
//
// Lobster consumes datasets selected "via a metadata service" (paper §2):
// the user names a dataset, Lobster queries DBS and obtains the list of data
// files, experiment runs, and luminosity sections ("lumisections") in the
// dataset (paper §4.2).  Tasklets are then defined over this metadata.
//
// This implementation is an in-process service with the same data model:
//   Dataset -> DataFile (logical file name, bytes, events)
//           -> per-file list of Lumisection {run, lumi} ranges.
// A synthetic builder generates realistic datasets (multi-GB files, ~100 kB
// events as stated in §4.2) deterministically from a seed.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace lobster::dbs {

/// A luminosity section: the smallest unit of recorded data the experiment
/// tracks, identified by (run number, lumi number).
struct Lumisection {
  std::uint32_t run = 0;
  std::uint32_t lumi = 0;

  friend bool operator==(const Lumisection&, const Lumisection&) = default;
  friend auto operator<=>(const Lumisection&, const Lumisection&) = default;
};

/// A single file in a dataset, identified by its logical file name (LFN).
/// The LFN is location independent; the XrootD redirector maps it to
/// physical replicas.
struct DataFile {
  std::string lfn;
  double size_bytes = 0.0;
  std::uint64_t events = 0;
  std::vector<Lumisection> lumis;
};

/// A named dataset: an ordered list of files.
struct Dataset {
  std::string name;
  std::vector<DataFile> files;

  [[nodiscard]] double total_bytes() const;
  [[nodiscard]] std::uint64_t total_events() const;
  [[nodiscard]] std::size_t total_lumis() const;
};

/// The bookkeeping service: a queryable catalog of datasets.
class DatasetBookkeeping {
 public:
  /// Register a dataset; throws std::invalid_argument on duplicate name.
  void publish(Dataset dataset);
  bool has(const std::string& name) const;
  /// Look up a dataset by name.
  std::optional<Dataset> query(const std::string& name) const;
  /// Names of all published datasets (sorted).
  std::vector<std::string> list() const;
  /// File-level query: all files of a dataset (empty if unknown).
  std::vector<DataFile> files(const std::string& name) const;
  std::size_t size() const { return catalog_.size(); }

 private:
  std::map<std::string, Dataset> catalog_;
};

/// Parameters for synthetic dataset generation.
struct SyntheticDatasetSpec {
  std::string name = "/Synthetic/Run2015A/AOD";
  std::size_t num_files = 100;
  /// Mean file size; actual sizes are lognormal around this (sigma ~ 0.25).
  double mean_file_bytes = 2.0e9;
  /// Mean event size controls events per file (paper: ~100 kB/event).
  double event_bytes = 100.0e3;
  /// Lumisections per file (uniform 20..60 when 0 => default).
  std::uint32_t lumis_per_file = 0;
  std::uint32_t first_run = 190456;
};

/// Deterministically build a synthetic dataset.
Dataset make_synthetic_dataset(const SyntheticDatasetSpec& spec,
                               util::Rng rng);

}  // namespace lobster::dbs

// task.hpp — task abstraction of the Work Queue execution framework
// (paper §3): the unit a master dispatches to a worker slot.
//
// A task carries an opaque work function (the "wrapper" around the actual
// application is provided by lobster::core), a tag for bookkeeping, and a
// declared sandbox size used by cost accounting.  Results report per-segment
// wall times and the eviction flag — the paper's central concern on
// non-dedicated resources.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "wq/sandbox.hpp"

namespace lobster::wq {

/// Cooperative cancellation: eviction marks the token; well-behaved work
/// functions poll it at natural checkpoints (per tasklet, per file, ...).
class CancelToken {
 public:
  bool cancelled() const { return flag_->load(std::memory_order_acquire); }
  void cancel() { flag_->store(true, std::memory_order_release); }
  CancelToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Execution context handed to the work function.
struct TaskContext {
  std::string worker_name;
  std::size_t slot = 0;
  CancelToken cancel;
  /// Scratch key/value outputs the work function may fill (e.g. bytes
  /// produced, tasklets processed); copied into the TaskResult.
  std::map<std::string, std::string> outputs;
  /// The task's staged sandbox: inputs readable, outputs written here are
  /// shipped back in TaskResult::output_files.  Null when the runtime has
  /// no file management (bare tests).
  Sandbox* sandbox = nullptr;
};

/// Exit codes mirroring the wrapper's per-segment failure codes (paper §5).
enum class TaskExit : int {
  Success = 0,
  WrapperFailure = 170,
  StageInFailure = 171,
  ExecutionFailure = 172,
  StageOutFailure = 173,
  EnvironmentFailure = 174,
  Evicted = 179,
};

struct TaskSpec {
  std::uint64_t id = 0;
  std::string tag;  ///< e.g. "analysis", "merge"
  /// The wrapper: returns an exit code; must poll ctx.cancel.
  std::function<int(TaskContext&)> work;
  double sandbox_bytes = 0.0;
  /// Input files staged into the sandbox before the work function runs.
  /// Cacheable files are shared through the worker's file cache.
  std::vector<InputFile> input_files;
  /// Filled by the dispatching TaskSource: seconds spent queued before a
  /// worker slot pulled the task.
  double dispatch_wait = 0.0;
};

struct TaskResult {
  std::uint64_t id = 0;
  std::string tag;
  int exit_code = 0;
  bool evicted = false;
  std::string worker_name;
  std::size_t slot = 0;
  double dispatch_time = 0.0;   ///< queue wait before a slot picked it up
  double execute_time = 0.0;    ///< wall time inside the work function
  double stage_in_bytes = 0.0;  ///< input volume transferred (cache misses)
  double cache_saved_bytes = 0.0;  ///< input volume served from the cache
  std::map<std::string, std::string> outputs;
  /// Files the work function wrote into its sandbox.
  std::map<std::string, std::string> output_files;

  bool success() const { return !evicted && exit_code == 0; }
};

/// The upstream interface a worker pulls tasks from: implemented by the
/// Master and by Foremen (making hierarchies of arbitrary width and depth,
/// paper §3).
class TaskSource {
 public:
  virtual ~TaskSource() = default;
  /// Timed pull: waits up to `wait` for a task.  nullopt means either a
  /// timeout or end-of-work — check drained() to distinguish.  Timed rather
  /// than indefinitely blocking so an evicted worker's slots can notice and
  /// exit instead of hanging on the connection.
  virtual std::optional<TaskSpec> next_task(std::chrono::milliseconds wait) = 0;
  /// True once no more tasks will ever arrive.
  virtual bool drained() const = 0;
  /// Report a finished (or evicted) task upward.
  virtual void deliver(TaskResult result) = 0;
};

}  // namespace lobster::wq

#include "wq/sandbox.hpp"

#include <stdexcept>

namespace lobster::wq {

std::uint64_t content_hash(const std::string& content) {
  // FNV-1a; collisions are acceptable for cache keys in this model, and the
  // content size is mixed in to cheaply harden short payloads.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : content) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h ^ (static_cast<std::uint64_t>(content.size()) << 32);
}

InputFile InputFile::make(std::string name, std::string content,
                          bool cacheable) {
  InputFile f;
  f.name = std::move(name);
  f.hash = content_hash(content);
  f.content = std::make_shared<const std::string>(std::move(content));
  f.cacheable = cacheable;
  return f;
}

void Sandbox::stage(const InputFile& file) {
  if (!file.content)
    throw std::invalid_argument("sandbox: input without content: " +
                                file.name);
  staged_[file.name] = file.content;
}

bool Sandbox::has(const std::string& name) const {
  return staged_.count(name) > 0 || written_.count(name) > 0;
}

const std::string& Sandbox::read(const std::string& name) const {
  const auto w = written_.find(name);
  if (w != written_.end()) return w->second;
  const auto s = staged_.find(name);
  if (s != staged_.end()) return *s->second;
  throw std::out_of_range("sandbox: no such file " + name);
}

void Sandbox::write(const std::string& name, std::string content) {
  written_[name] = std::move(content);
}

std::vector<std::string> Sandbox::list() const {
  std::vector<std::string> out;
  for (const auto& [name, _] : staged_) out.push_back(name);
  for (const auto& [name, _] : written_)
    if (!staged_.count(name)) out.push_back(name);
  return out;
}

std::map<std::string, std::string> Sandbox::outputs() const {
  return written_;
}

double Sandbox::bytes() const {
  double total = 0.0;
  for (const auto& [_, content] : staged_)
    total += static_cast<double>(content->size());
  for (const auto& [_, content] : written_)
    total += static_cast<double>(content.size());
  return total;
}

std::shared_ptr<const std::string> WorkerFileCache::find(
    std::uint64_t hash) const {
  std::lock_guard lock(mutex_);
  const auto it = cache_.find(hash);
  if (it == cache_.end()) return nullptr;
  return it->second;
}

void WorkerFileCache::insert(std::uint64_t hash,
                             std::shared_ptr<const std::string> content) {
  std::lock_guard lock(mutex_);
  cache_.emplace(hash, std::move(content));
}

std::shared_ptr<const std::string> WorkerFileCache::stage_through(
    const InputFile& file) {
  if (!file.content)
    throw std::invalid_argument("cache: input without content: " + file.name);
  std::lock_guard lock(mutex_);
  if (file.cacheable) {
    const auto it = cache_.find(file.hash);
    if (it != cache_.end()) {
      ++hits_;
      bytes_saved_ += static_cast<double>(it->second->size());
      return it->second;
    }
    cache_.emplace(file.hash, file.content);
  }
  ++misses_;
  bytes_transferred_ += static_cast<double>(file.content->size());
  return file.content;
}

std::uint64_t WorkerFileCache::hits() const {
  std::lock_guard lock(mutex_);
  return hits_;
}

std::uint64_t WorkerFileCache::misses() const {
  std::lock_guard lock(mutex_);
  return misses_;
}

double WorkerFileCache::bytes_transferred() const {
  std::lock_guard lock(mutex_);
  return bytes_transferred_;
}

double WorkerFileCache::bytes_saved() const {
  std::lock_guard lock(mutex_);
  return bytes_saved_;
}

std::size_t WorkerFileCache::size() const {
  std::lock_guard lock(mutex_);
  return cache_.size();
}

}  // namespace lobster::wq

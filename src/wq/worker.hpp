// worker.hpp — a multi-slot Work Queue worker (paper §3): "a single worker
// can be configured to manage multiple cores on a machine, and run multiple
// tasks simultaneously, sharing a single cache directory, and a single
// connection to the master."
//
// Each slot is a real thread pulling tasks from the upstream TaskSource.
// Eviction — the defining event of non-dedicated resources — is injected
// with evict(): running tasks are cancelled cooperatively and reported
// upward with the Evicted exit code, exactly what the batch system does when
// "resource availability and scheduling policies dictate".
#pragma once

#include <atomic>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/thread_annotations.hpp"
#include "util/trace.hpp"
#include "wq/task.hpp"

namespace lobster::wq {

class Worker {
 public:
  /// Start `slots` execution threads pulling from `source`.
  Worker(std::string name, TaskSource& source, std::size_t slots);
  ~Worker();
  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  const std::string& name() const { return name_; }
  std::size_t slots() const { return threads_.size(); }

  /// Evict the worker: cancel everything in flight (reported as Evicted)
  /// and stop pulling new work.  Idempotent.
  void evict();

  /// Graceful stop: finish the current tasks, pull no more.  Joins threads.
  void shutdown();

  /// Block until every slot thread has exited (source drained or evicted).
  void join();

  [[nodiscard]] std::uint64_t tasks_run() const { return tasks_run_.load(); }
  [[nodiscard]] bool evicted() const { return evicting_.load(); }
  /// The worker-wide input-file cache shared by all slots.
  const WorkerFileCache& file_cache() const { return file_cache_; }

  /// Attach the unified counter plane (wq.worker.*).  Optional; call before
  /// the first task executes for complete counts.
  void bind_counters(util::CounterRegistry& registry);

 private:
  void slot_loop(std::size_t slot);

  std::string name_ LOBSTER_NOT_GUARDED(immutable after construction);
  TaskSource& source_ LOBSTER_NOT_GUARDED(immutable after construction);
  std::atomic<bool> evicting_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> tasks_run_{0};
  // Each task gets a fresh token (a payload may cancel its own token, and
  // that must not poison later tasks on the slot); evict() cancels whatever
  // tokens are current.
  std::mutex tokens_mutex_;
  std::vector<CancelToken> slot_tokens_ LOBSTER_GUARDED_BY(tokens_mutex_);
  WorkerFileCache file_cache_ LOBSTER_NOT_GUARDED(internally synchronized);
  std::vector<std::thread> threads_
      LOBSTER_NOT_GUARDED(written only in ctor and join/shutdown);
  util::Counter* ctr_tasks_run_ LOBSTER_NOT_GUARDED(target is atomic) = nullptr;
  util::Counter* ctr_evictions_ LOBSTER_NOT_GUARDED(target is atomic) = nullptr;
  util::Gauge* ctr_stage_in_bytes_ LOBSTER_NOT_GUARDED(target is atomic) =
      nullptr;
  util::Gauge* ctr_cache_saved_bytes_ LOBSTER_NOT_GUARDED(target is atomic) =
      nullptr;
};

}  // namespace lobster::wq

#include "wq/master.hpp"

namespace lobster::wq {

namespace {
double elapsed_seconds(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       since)
      .count();
}
}  // namespace

void Master::bind_counters(util::CounterRegistry& registry) {
  ctr_submitted_ = &registry.counter("wq.master.submitted");
  ctr_dispatched_ = &registry.counter("wq.master.dispatched");
  ctr_completed_ = &registry.counter("wq.master.completed");
  ctr_failed_ = &registry.counter("wq.master.failed");
  ctr_evicted_ = &registry.counter("wq.master.evicted");
  ctr_rejected_resubmits_ = &registry.counter("wq.master.rejected_resubmits");
}

bool Master::submit(TaskSpec spec) {
  if (closed_.load(std::memory_order_acquire)) {
    rejected_resubmits_.fetch_add(1, std::memory_order_acq_rel);
    util::bump(ctr_rejected_resubmits_);
    return false;
  }
  submitted_.fetch_add(1, std::memory_order_acq_rel);
  if (!pending_.send(Stamped{std::move(spec),
                             std::chrono::steady_clock::now()})) {
    // Lost the race with close_submission(): undo the count and record the
    // rejection.  The transient submitted_ inflation may have made
    // close_submission's delivered==submitted check fail spuriously, so
    // re-run the close check here — otherwise nobody closes results_ and
    // next_result() hangs.
    submitted_.fetch_sub(1, std::memory_order_acq_rel);
    rejected_resubmits_.fetch_add(1, std::memory_order_acq_rel);
    util::bump(ctr_rejected_resubmits_);
    maybe_close_results();
    return false;
  }
  util::bump(ctr_submitted_);
  return true;
}

void Master::close_submission() {
  bool expected = false;
  if (!closed_.compare_exchange_strong(expected, true)) return;
  pending_.close();
  // If everything already came back, unblock result consumers now.
  maybe_close_results();
}

void Master::maybe_close_results() {
  // BOTH loads must happen under the mutex.  With bare acq/rel each side
  // of the old check (deliver: write delivered_, read closed_;
  // close_submission: write closed_, read delivered_) could read the
  // other's pre-write value — store-buffering, so both skipped the close
  // and next_result() blocked forever.  The mutex serialises the checkers:
  // whichever of close_submission(), the final deliver(), or a doomed
  // submit() locks last observes the terminal state and closes results_.
  std::lock_guard lock(close_mutex_);
  if (!closed_.load(std::memory_order_acquire)) return;
  if (delivered_.load(std::memory_order_acquire) ==
      submitted_.load(std::memory_order_acquire))
    results_.close();
}

std::optional<TaskResult> Master::next_result() { return results_.receive(); }

std::optional<TaskSpec> Master::next_task(std::chrono::milliseconds wait) {
  auto stamped = pending_.receive_for(wait);
  if (!stamped) return std::nullopt;
  dispatched_.fetch_add(1, std::memory_order_acq_rel);
  util::bump(ctr_dispatched_);
  stamped->spec.dispatch_wait = elapsed_seconds(stamped->enqueued);
  return std::move(stamped->spec);
}

void Master::deliver(TaskResult result) {
  if (result.evicted) {
    evicted_.fetch_add(1, std::memory_order_acq_rel);
    util::bump(ctr_evicted_);
  } else if (result.exit_code == 0) {
    completed_.fetch_add(1, std::memory_order_acq_rel);
    util::bump(ctr_completed_);
  } else {
    failed_.fetch_add(1, std::memory_order_acq_rel);
    util::bump(ctr_failed_);
  }
  results_.send(std::move(result));
  delivered_.fetch_add(1, std::memory_order_acq_rel);
  maybe_close_results();
}

}  // namespace lobster::wq

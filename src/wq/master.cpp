#include "wq/master.hpp"

namespace lobster::wq {

namespace {
double elapsed_seconds(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       since)
      .count();
}
}  // namespace

bool Master::submit(TaskSpec spec) {
  if (closed_.load(std::memory_order_acquire)) return false;
  submitted_.fetch_add(1, std::memory_order_acq_rel);
  if (!pending_.send(Stamped{std::move(spec),
                             std::chrono::steady_clock::now()})) {
    submitted_.fetch_sub(1, std::memory_order_acq_rel);
    return false;
  }
  return true;
}

void Master::close_submission() {
  bool expected = false;
  if (!closed_.compare_exchange_strong(expected, true)) return;
  pending_.close();
  // If everything already came back, unblock result consumers now.
  if (delivered_.load(std::memory_order_acquire) ==
      submitted_.load(std::memory_order_acquire))
    results_.close();
}

std::optional<TaskResult> Master::next_result() { return results_.receive(); }

std::optional<TaskSpec> Master::next_task(std::chrono::milliseconds wait) {
  auto stamped = pending_.receive_for(wait);
  if (!stamped) return std::nullopt;
  dispatched_.fetch_add(1, std::memory_order_acq_rel);
  stamped->spec.dispatch_wait = elapsed_seconds(stamped->enqueued);
  return std::move(stamped->spec);
}

void Master::deliver(TaskResult result) {
  if (result.evicted)
    evicted_.fetch_add(1, std::memory_order_acq_rel);
  else if (result.exit_code == 0)
    completed_.fetch_add(1, std::memory_order_acq_rel);
  else
    failed_.fetch_add(1, std::memory_order_acq_rel);
  results_.send(std::move(result));
  const std::uint64_t done =
      delivered_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (closed_.load(std::memory_order_acquire) &&
      done == submitted_.load(std::memory_order_acquire))
    results_.close();
}

}  // namespace lobster::wq

#include "wq/master.hpp"

namespace lobster::wq {

namespace {
double elapsed_seconds(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       since)
      .count();
}
}  // namespace

void Master::bind_counters(util::CounterRegistry& registry) {
  ctr_submitted_ = &registry.counter("wq.master.submitted");
  ctr_dispatched_ = &registry.counter("wq.master.dispatched");
  ctr_completed_ = &registry.counter("wq.master.completed");
  ctr_failed_ = &registry.counter("wq.master.failed");
  ctr_evicted_ = &registry.counter("wq.master.evicted");
}

bool Master::submit(TaskSpec spec) {
  if (closed_.load(std::memory_order_acquire)) return false;
  submitted_.fetch_add(1, std::memory_order_acq_rel);
  if (!pending_.send(Stamped{std::move(spec),
                             std::chrono::steady_clock::now()})) {
    submitted_.fetch_sub(1, std::memory_order_acq_rel);
    return false;
  }
  util::bump(ctr_submitted_);
  return true;
}

void Master::close_submission() {
  bool expected = false;
  if (!closed_.compare_exchange_strong(expected, true)) return;
  pending_.close();
  // If everything already came back, unblock result consumers now.
  if (delivered_.load(std::memory_order_acquire) ==
      submitted_.load(std::memory_order_acquire))
    results_.close();
}

std::optional<TaskResult> Master::next_result() { return results_.receive(); }

std::optional<TaskSpec> Master::next_task(std::chrono::milliseconds wait) {
  auto stamped = pending_.receive_for(wait);
  if (!stamped) return std::nullopt;
  dispatched_.fetch_add(1, std::memory_order_acq_rel);
  util::bump(ctr_dispatched_);
  stamped->spec.dispatch_wait = elapsed_seconds(stamped->enqueued);
  return std::move(stamped->spec);
}

void Master::deliver(TaskResult result) {
  if (result.evicted) {
    evicted_.fetch_add(1, std::memory_order_acq_rel);
    util::bump(ctr_evicted_);
  } else if (result.exit_code == 0) {
    completed_.fetch_add(1, std::memory_order_acq_rel);
    util::bump(ctr_completed_);
  } else {
    failed_.fetch_add(1, std::memory_order_acq_rel);
    util::bump(ctr_failed_);
  }
  results_.send(std::move(result));
  const std::uint64_t done =
      delivered_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (closed_.load(std::memory_order_acquire) &&
      done == submitted_.load(std::memory_order_acquire))
    results_.close();
}

}  // namespace lobster::wq

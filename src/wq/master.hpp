// master.hpp — the Work Queue master (paper §3): accepts tasks from the
// application (Lobster), hands them to pulling workers/foremen, and collects
// results.
//
// The master never pushes: workers "make a TCP connection back to the
// master, which sends tasks" — modelled here as a blocking pull on a shared
// channel, preserving the key property that dispatch is demand-driven and
// the master needs no knowledge of worker liveness.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <optional>

#include "util/channel.hpp"
#include "util/thread_annotations.hpp"
#include "util/trace.hpp"
#include "wq/task.hpp"

namespace lobster::wq {

class Master : public TaskSource {
 public:
  Master() = default;

  // ---- application side ----------------------------------------------------

  /// Queue a task for dispatch.  Returns false after close_submission().
  ///
  /// Contract for evicted work: a TaskResult marked evicted invites
  /// resubmission, but a resubmit that races close_submission() is
  /// REJECTED, not silently dropped — submit() returns false and the
  /// rejection is counted in rejected_resubmits() (and the
  /// wq.master.rejected_resubmits counter).  An application that closes
  /// submission while evicted work is still in flight must either check
  /// submit()'s return value and handle the loss, or keep submission open
  /// until every eviction has been redispatched.
  bool submit(TaskSpec spec);
  /// No more submissions; workers drain the queue then see end-of-work.
  void close_submission();
  /// Blocking: next completed/evicted task; nullopt when all submitted
  /// tasks have been accounted for and submission is closed.
  std::optional<TaskResult> next_result();

  // ---- worker side (TaskSource) ---------------------------------------------

  std::optional<TaskSpec> next_task(std::chrono::milliseconds wait) override;
  bool drained() const override { return pending_.drained(); }
  void deliver(TaskResult result) override;

  // ---- stats ----------------------------------------------------------------

  [[nodiscard]] std::uint64_t submitted() const { return submitted_.load(); }
  [[nodiscard]] std::uint64_t dispatched() const { return dispatched_.load(); }
  [[nodiscard]] std::uint64_t completed() const { return completed_.load(); }
  [[nodiscard]] std::uint64_t failed() const { return failed_.load(); }
  [[nodiscard]] std::uint64_t evicted() const { return evicted_.load(); }
  /// Submissions refused because submission was already closed (typically
  /// an evicted task resubmitted after close_submission()).
  [[nodiscard]] std::uint64_t rejected_resubmits() const {
    return rejected_resubmits_.load();
  }
  [[nodiscard]] std::size_t queue_depth() const { return pending_.size(); }

  /// Attach the unified counter plane (wq.master.*).  Optional; call before
  /// workers start pulling.
  void bind_counters(util::CounterRegistry& registry);

 private:
  struct Stamped {
    TaskSpec spec;
    std::chrono::steady_clock::time_point enqueued;
  };

  /// Close results_ exactly once when submission is closed and every
  /// submitted task has been delivered.  Serialised by close_mutex_: the
  /// bare acq/rel checks previously done by close_submission() and
  /// deliver() could each see the other's half-finished state and both
  /// skip the close (a Dekker-style lost wakeup), leaving next_result()
  /// blocked forever.
  void maybe_close_results();

  util::Channel<Stamped> pending_ LOBSTER_NOT_GUARDED(internally synchronized);
  util::Channel<TaskResult> results_
      LOBSTER_NOT_GUARDED(internally synchronized);
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> dispatched_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> evicted_{0};
  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<std::uint64_t> rejected_resubmits_{0};
  std::atomic<bool> closed_{false};
  // Serializes the drained-check/close decision; results_.close() runs
  // under it, so it orders before the Channel lock (see DESIGN.md).
  std::mutex close_mutex_ LOBSTER_ACQUIRED_BEFORE(util::Channel::mutex_);
  util::Counter* ctr_submitted_ LOBSTER_NOT_GUARDED(target is atomic) = nullptr;
  util::Counter* ctr_dispatched_ LOBSTER_NOT_GUARDED(target is atomic) =
      nullptr;
  util::Counter* ctr_completed_ LOBSTER_NOT_GUARDED(target is atomic) = nullptr;
  util::Counter* ctr_failed_ LOBSTER_NOT_GUARDED(target is atomic) = nullptr;
  util::Counter* ctr_evicted_ LOBSTER_NOT_GUARDED(target is atomic) = nullptr;
  util::Counter* ctr_rejected_resubmits_ LOBSTER_NOT_GUARDED(target is atomic) =
      nullptr;
};

}  // namespace lobster::wq

// sandbox.hpp — Work Queue task file management.
//
// Paper §2: on non-dedicated resources "the costs of these preemptions are
// magnified by the amount of state (software and data) on the preempted
// node, so the system must be designed to pull the minimum amount of state
// and share it among jobs to the maximum extent possible."  Work Queue
// realises this with per-task sandboxes fed from a content-addressed worker
// cache: inputs marked cacheable are transferred to a worker once and
// shared by every subsequent task on that worker.
//
// Files are immutable payloads held by shared_ptr; a "transfer" is
// accounted (bytes, cache hit/miss) rather than physically copied, which
// keeps the runtime honest about data movement without burning memory.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/thread_annotations.hpp"

namespace lobster::wq {

/// Content hash used as the worker-cache key.
std::uint64_t content_hash(const std::string& content);

/// An input file attached to a TaskSpec.
struct InputFile {
  std::string name;  ///< path inside the sandbox
  std::shared_ptr<const std::string> content;
  bool cacheable = true;  ///< shared across tasks on the same worker
  std::uint64_t hash = 0;

  static InputFile make(std::string name, std::string content,
                        bool cacheable = true);
};

/// Per-task scratch directory: inputs staged in, outputs written by the
/// work function and shipped back in the TaskResult.
class Sandbox {
 public:
  void stage(const InputFile& file);
  bool has(const std::string& name) const;
  /// Read a staged or written file; throws std::out_of_range when absent.
  const std::string& read(const std::string& name) const;
  /// Create/overwrite a file (the task's outputs).
  void write(const std::string& name, std::string content);
  std::vector<std::string> list() const;
  /// Files created by write() (i.e. not staged inputs).
  std::map<std::string, std::string> outputs() const;
  double bytes() const;

 private:
  std::map<std::string, std::shared_ptr<const std::string>> staged_;
  std::map<std::string, std::string> written_;
};

/// The worker's shared cache of cacheable inputs ("sharing a single cache
/// directory", paper §3).  Thread safe: all slots of a worker use it
/// concurrently.
class WorkerFileCache {
 public:
  /// Look up by hash; nullptr on miss.
  std::shared_ptr<const std::string> find(std::uint64_t hash) const;
  /// Insert after a miss.
  void insert(std::uint64_t hash, std::shared_ptr<const std::string> content);
  /// Stage an input through the cache with full accounting: a cacheable
  /// file already present is a hit (bytes saved); anything else is a
  /// transfer (bytes counted, cacheables inserted).  Returns the content.
  std::shared_ptr<const std::string> stage_through(const InputFile& file);

  [[nodiscard]] std::uint64_t hits() const;
  [[nodiscard]] std::uint64_t misses() const;
  /// Bytes that actually crossed the wire (misses only).
  [[nodiscard]] double bytes_transferred() const;
  /// Bytes avoided thanks to the cache (hits).
  [[nodiscard]] double bytes_saved() const;
  std::size_t size() const;

 private:
  friend class Worker;
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, std::shared_ptr<const std::string>> cache_
      LOBSTER_GUARDED_BY(mutex_);
  std::uint64_t hits_ LOBSTER_GUARDED_BY(mutex_) = 0;
  std::uint64_t misses_ LOBSTER_GUARDED_BY(mutex_) = 0;
  double bytes_transferred_ LOBSTER_GUARDED_BY(mutex_) = 0.0;
  double bytes_saved_ LOBSTER_GUARDED_BY(mutex_) = 0.0;
};

}  // namespace lobster::wq

#include "wq/worker.hpp"

#include <chrono>

namespace lobster::wq {

using namespace std::chrono_literals;

Worker::Worker(std::string name, TaskSource& source, std::size_t slots)
    : name_(std::move(name)), source_(source) {
  if (slots == 0) slots = 1;
  slot_tokens_.resize(slots);
  threads_.reserve(slots);
  for (std::size_t s = 0; s < slots; ++s)
    threads_.emplace_back([this, s] { slot_loop(s); });
}

Worker::~Worker() {
  evict();
  join();
}

void Worker::bind_counters(util::CounterRegistry& registry) {
  ctr_tasks_run_ = &registry.counter("wq.worker.tasks_run");
  ctr_evictions_ = &registry.counter("wq.worker.evictions");
  ctr_stage_in_bytes_ = &registry.gauge("wq.worker.stage_in_bytes");
  ctr_cache_saved_bytes_ = &registry.gauge("wq.worker.cache_saved_bytes");
}

void Worker::evict() {
  bool expected = false;
  if (!evicting_.compare_exchange_strong(expected, true)) return;
  util::bump(ctr_evictions_);
  std::lock_guard lock(tokens_mutex_);
  for (auto& token : slot_tokens_) token.cancel();
}

void Worker::shutdown() {
  stopping_.store(true, std::memory_order_release);
  join();
}

void Worker::join() {
  for (auto& t : threads_)
    if (t.joinable()) t.join();
}

void Worker::slot_loop(std::size_t slot) {
  while (!stopping_.load(std::memory_order_acquire)) {
    auto spec = source_.next_task(50ms);
    if (!spec) {
      if (source_.drained() || evicting_.load(std::memory_order_acquire))
        return;
      continue;
    }
    TaskResult result;
    result.id = spec->id;
    result.tag = spec->tag;
    result.worker_name = name_;
    result.slot = slot;
    result.dispatch_time = spec->dispatch_wait;

    if (evicting_.load(std::memory_order_acquire)) {
      // Pulled after eviction: never started; hand it back as evicted so
      // the application resubmits the work.
      result.evicted = true;
      result.exit_code = static_cast<int>(TaskExit::Evicted);
      source_.deliver(std::move(result));
      return;
    }

    TaskContext ctx;
    ctx.worker_name = name_;
    ctx.slot = slot;
    {
      std::lock_guard lock(tokens_mutex_);
      slot_tokens_[slot] = CancelToken();  // fresh token for this task
      if (evicting_.load(std::memory_order_acquire))
        slot_tokens_[slot].cancel();
      ctx.cancel = slot_tokens_[slot];
    }

    // Stage the task's inputs into a fresh sandbox through the worker's
    // shared file cache: cacheable inputs cross the wire once per worker.
    Sandbox sandbox;
    bool staging_ok = true;
    for (const auto& input : spec->input_files) {
      try {
        const auto before = file_cache_.bytes_transferred();
        const auto saved_before = file_cache_.bytes_saved();
        InputFile staged = input;
        staged.content = file_cache_.stage_through(input);
        sandbox.stage(staged);
        const double transferred = file_cache_.bytes_transferred() - before;
        const double saved = file_cache_.bytes_saved() - saved_before;
        result.stage_in_bytes += transferred;
        result.cache_saved_bytes += saved;
        util::bump(ctr_stage_in_bytes_, transferred);
        util::bump(ctr_cache_saved_bytes_, saved);
      } catch (...) {
        staging_ok = false;
        break;
      }
    }
    if (!staging_ok) {
      result.exit_code = static_cast<int>(TaskExit::StageInFailure);
      tasks_run_.fetch_add(1, std::memory_order_acq_rel);
      util::bump(ctr_tasks_run_);
      source_.deliver(std::move(result));
      continue;
    }
    ctx.sandbox = &sandbox;

    const auto t0 = std::chrono::steady_clock::now();
    int code;
    try {
      code = spec->work ? spec->work(ctx)
                        : static_cast<int>(TaskExit::WrapperFailure);
    } catch (...) {
      code = static_cast<int>(TaskExit::ExecutionFailure);
    }
    result.execute_time =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    result.outputs = std::move(ctx.outputs);
    result.output_files = sandbox.outputs();
    if (ctx.cancel.cancelled()) {
      result.evicted = true;
      result.exit_code = static_cast<int>(TaskExit::Evicted);
    } else {
      result.exit_code = code;
    }
    tasks_run_.fetch_add(1, std::memory_order_acq_rel);
    util::bump(ctr_tasks_run_);
    source_.deliver(std::move(result));
  }
}

}  // namespace lobster::wq

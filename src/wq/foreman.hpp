// foreman.hpp — an intermediate rank between master and workers (paper §3):
// "the number of workers can be increased by introducing foremen between
// the master and the workers to create a hierarchy of arbitrary width and
// depth.  In this work, we use one intermediate rank of four foremen
// driving a variable number of workers managing eight cores each."
//
// A Foreman is simultaneously a consumer of its upstream TaskSource and a
// TaskSource for its own workers (or further foremen).  A pump thread
// prefetches a bounded window of tasks so downstream pulls are served from
// local state — spreading the load of sending out sandboxes, which is
// exactly the remedy the monitoring section recommends for "long sandbox
// stage-in times" (paper §5).
#pragma once

#include <atomic>
#include <string>
#include <thread>

#include "util/channel.hpp"
#include "wq/task.hpp"

namespace lobster::wq {

class Foreman : public TaskSource {
 public:
  /// Prefetch up to `window` tasks from `upstream`.
  Foreman(std::string name, TaskSource& upstream, std::size_t window = 64);
  ~Foreman() override;
  Foreman(const Foreman&) = delete;
  Foreman& operator=(const Foreman&) = delete;

  const std::string& name() const { return name_; }

  // ---- TaskSource for downstream workers ------------------------------------
  std::optional<TaskSpec> next_task(std::chrono::milliseconds wait) override;
  bool drained() const override { return local_.drained(); }
  void deliver(TaskResult result) override;

  /// Stop pumping and release downstream pullers.  Called automatically on
  /// destruction; safe to call early.
  void shutdown();

  [[nodiscard]] std::uint64_t tasks_relayed() const { return relayed_.load(); }
  std::uint64_t results_relayed() const { return results_.load(); }

 private:
  void pump();

  std::string name_;
  TaskSource& upstream_;
  util::Channel<TaskSpec> local_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> relayed_{0};
  std::atomic<std::uint64_t> results_{0};
  std::thread pump_thread_;
};

}  // namespace lobster::wq

// foreman.hpp — an intermediate rank between master and workers (paper §3):
// "the number of workers can be increased by introducing foremen between
// the master and the workers to create a hierarchy of arbitrary width and
// depth.  In this work, we use one intermediate rank of four foremen
// driving a variable number of workers managing eight cores each."
//
// A Foreman is simultaneously a consumer of its upstream TaskSource and a
// TaskSource for its own workers (or further foremen) — so foremen compose
// into trees of arbitrary depth: a Foreman whose upstream is another
// Foreman forms a depth-2 relay, and each level keeps its own bounded
// prefetch window.  A pump thread prefetches that window so downstream
// pulls are served from local state — spreading the load of sending out
// sandboxes, which is exactly the remedy the monitoring section recommends
// for "long sandbox stage-in times" (paper §5).
//
// Sibling foremen that share a common ancestor may join a StealGroup: an
// idle leaf whose own window has drained pulls buffered-but-undispatched
// TaskSpecs from the sibling with the deepest backlog.  Because a stolen
// task's result is delivered through the thief back to the same ancestor,
// the master's accounting stays exact; per-foreman ledgers record which
// side of the steal each task landed on.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/channel.hpp"
#include "util/thread_annotations.hpp"
#include "util/trace.hpp"
#include "wq/task.hpp"

namespace lobster::wq {

class Foreman;

/// A registry of sibling foremen (same upstream ancestor) that are allowed
/// to steal buffered tasks from each other.  Membership is mutex-guarded;
/// a foreman unregisters itself at the start of shutdown(), and remove()
/// waits out any in-flight steal targeting it, so a thief can never touch
/// a dead sibling.
class StealGroup {
 public:
  StealGroup() = default;
  StealGroup(const StealGroup&) = delete;
  StealGroup& operator=(const StealGroup&) = delete;

  /// One buffered task from the sibling with the deepest backlog, or
  /// nullopt when no sibling has anything to give.  Counts the attempt
  /// either way.
  std::optional<TaskSpec> steal_for(const Foreman* thief);

  /// True when every member other than `self` has a closed-and-empty
  /// window — i.e. nothing is left anywhere in the group for `self`'s
  /// workers to steal.
  bool siblings_drained(const Foreman* self) const;

  [[nodiscard]] std::uint64_t steal_attempts() const {
    return attempts_.load();
  }
  [[nodiscard]] std::uint64_t tasks_stolen() const { return stolen_.load(); }

  /// Attach the unified counter plane (wq.steal.*).  Optional.
  void bind_counters(util::CounterRegistry& registry);

 private:
  friend class Foreman;
  void add(Foreman* member);
  void remove(Foreman* member);

  // Held while probing members' local queues (queue_depth / steal_one), so
  // it sits above every Channel lock in the hierarchy; see DESIGN.md.
  mutable std::mutex mutex_ LOBSTER_ACQUIRED_BEFORE(util::Channel::mutex_);
  std::vector<Foreman*> members_ LOBSTER_GUARDED_BY(mutex_);
  std::atomic<std::uint64_t> attempts_{0};
  std::atomic<std::uint64_t> stolen_{0};
  util::Counter* ctr_attempts_ LOBSTER_NOT_GUARDED(target is atomic) = nullptr;
  util::Counter* ctr_stolen_ LOBSTER_NOT_GUARDED(target is atomic) = nullptr;
};

class Foreman : public TaskSource {
 public:
  /// Prefetch up to `window` tasks from `upstream`.  When `steal` is given
  /// the foreman joins that group and its workers may steal from siblings
  /// once the local window drains.
  Foreman(std::string name, TaskSource& upstream, std::size_t window = 64,
          StealGroup* steal = nullptr);
  ~Foreman() override;
  Foreman(const Foreman&) = delete;
  Foreman& operator=(const Foreman&) = delete;

  const std::string& name() const { return name_; }

  // ---- TaskSource for downstream workers ------------------------------------
  std::optional<TaskSpec> next_task(std::chrono::milliseconds wait) override;
  /// Drained only when the local window is finished AND (if in a steal
  /// group) no sibling has buffered work left to steal — otherwise this
  /// foreman's workers would exit while stealable tasks still exist.
  bool drained() const override;
  void deliver(TaskResult result) override;

  /// Stop pumping and release downstream pullers.  Called automatically on
  /// destruction; safe to call early.  Unregisters from the steal group
  /// first, then reports still-buffered tasks upward as evicted.
  void shutdown();

  // ---- per-foreman ledger ----------------------------------------------------
  // Every task accepted into the local window (counted `relayed`) leaves it
  // exactly one way: dispatched to an own worker, stolen by a sibling, or
  // evicted at shutdown.  At quiescence:
  //   tasks_relayed() == tasks_dispatched() + tasks_stolen_from()
  //                      + tasks_evicted()
  // A task whose bounded send is interrupted by shutdown never enters the
  // window: it is reported evicted upstream but appears in no local ledger.
  [[nodiscard]] std::uint64_t tasks_relayed() const { return relayed_.load(); }
  [[nodiscard]] std::uint64_t tasks_dispatched() const {
    return dispatched_.load();
  }
  /// Tasks this foreman's workers stole from siblings.
  [[nodiscard]] std::uint64_t tasks_stolen() const { return stolen_.load(); }
  /// Tasks siblings stole out of this foreman's window.
  [[nodiscard]] std::uint64_t tasks_stolen_from() const {
    return stolen_from_.load();
  }
  [[nodiscard]] std::uint64_t tasks_evicted() const { return evicted_.load(); }
  [[nodiscard]] std::uint64_t results_relayed() const { return results_.load(); }
  [[nodiscard]] std::size_t queue_depth() const { return local_.size(); }

  /// Attach the unified counter plane (wq.foreman.*, aggregated across all
  /// foremen bound to the same registry).  Optional.
  void bind_counters(util::CounterRegistry& registry);

 private:
  friend class StealGroup;
  void pump();
  /// Pop one buffered task for a sibling thief (called under the group
  /// mutex).  The channel pops atomically, so a spec goes to exactly one of
  /// steal / dispatch / shutdown-eviction even mid-race.
  std::optional<TaskSpec> steal_one();
  bool local_drained() const { return local_.drained(); }

  std::string name_;
  TaskSource& upstream_;
  util::Channel<TaskSpec> local_;
  StealGroup* group_ LOBSTER_NOT_GUARDED(immutable after construction);
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> relayed_{0};
  std::atomic<std::uint64_t> dispatched_{0};
  std::atomic<std::uint64_t> stolen_{0};
  std::atomic<std::uint64_t> stolen_from_{0};
  std::atomic<std::uint64_t> evicted_{0};
  std::atomic<std::uint64_t> results_{0};
  std::thread pump_thread_;
  util::Counter* ctr_relayed_ LOBSTER_NOT_GUARDED(target is atomic) = nullptr;
  util::Counter* ctr_dispatched_ LOBSTER_NOT_GUARDED(target is atomic) =
      nullptr;
  util::Counter* ctr_evicted_ LOBSTER_NOT_GUARDED(target is atomic) = nullptr;
};

}  // namespace lobster::wq

#include "wq/foreman.hpp"

namespace lobster::wq {

using namespace std::chrono_literals;

Foreman::Foreman(std::string name, TaskSource& upstream, std::size_t window)
    : name_(std::move(name)),
      upstream_(upstream),
      local_(window == 0 ? 1 : window) {
  pump_thread_ = std::thread([this] { pump(); });
}

Foreman::~Foreman() { shutdown(); }

void Foreman::shutdown() {
  stopping_.store(true, std::memory_order_release);
  // Close before joining: the pump may be blocked in a bounded send, which
  // close() unblocks (that one in-flight task is dropped and reported
  // below via the pump's own eviction path).
  local_.close();
  if (pump_thread_.joinable()) pump_thread_.join();
  // Tasks still buffered when a foreman dies are lost downstream; report
  // them upward as evicted so the master's accounting stays exact and the
  // application resubmits them.
  while (auto spec = local_.try_receive()) {
    TaskResult r;
    r.id = spec->id;
    r.tag = spec->tag;
    r.worker_name = name_;
    r.evicted = true;
    r.exit_code = static_cast<int>(TaskExit::Evicted);
    deliver(std::move(r));
  }
}

void Foreman::pump() {
  while (!stopping_.load(std::memory_order_acquire)) {
    auto spec = upstream_.next_task(50ms);
    if (!spec) {
      if (upstream_.drained()) {
        local_.close();
        return;
      }
      continue;
    }
    relayed_.fetch_add(1, std::memory_order_acq_rel);
    const std::uint64_t id = spec->id;
    std::string tag = spec->tag;
    // Bounded send: backpressure when our workers are slower than the
    // master can hand out work.  A false return means the foreman was shut
    // down mid-send: report the task as evicted so it is not lost.
    if (!local_.send(std::move(*spec))) {
      TaskResult r;
      r.id = id;
      r.tag = std::move(tag);
      r.worker_name = name_;
      r.evicted = true;
      r.exit_code = static_cast<int>(TaskExit::Evicted);
      deliver(std::move(r));
      return;
    }
  }
}

std::optional<TaskSpec> Foreman::next_task(std::chrono::milliseconds wait) {
  return local_.receive_for(wait);
}

void Foreman::deliver(TaskResult result) {
  results_.fetch_add(1, std::memory_order_acq_rel);
  upstream_.deliver(std::move(result));
}

}  // namespace lobster::wq

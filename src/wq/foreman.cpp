#include "wq/foreman.hpp"

namespace lobster::wq {

using namespace std::chrono_literals;

// ---- StealGroup -------------------------------------------------------------

void StealGroup::bind_counters(util::CounterRegistry& registry) {
  ctr_attempts_ = &registry.counter("wq.steal.attempts");
  ctr_stolen_ = &registry.counter("wq.steal.tasks");
}

void StealGroup::add(Foreman* member) {
  std::lock_guard lock(mutex_);
  members_.push_back(member);
}

void StealGroup::remove(Foreman* member) {
  // Taking the mutex waits out any steal_for() currently touching `member`,
  // so after remove() returns no thief can reach it again.
  std::lock_guard lock(mutex_);
  std::erase(members_, member);
}

std::optional<TaskSpec> StealGroup::steal_for(const Foreman* thief) {
  attempts_.fetch_add(1, std::memory_order_relaxed);
  util::bump(ctr_attempts_);
  std::lock_guard lock(mutex_);
  // Victim selection is load-aware: deepest buffered backlog first, so the
  // steal relieves the most congested sibling.
  Foreman* victim = nullptr;
  std::size_t deepest = 0;
  for (Foreman* m : members_) {
    if (m == thief) continue;
    const std::size_t depth = m->queue_depth();
    if (depth > deepest) {
      deepest = depth;
      victim = m;
    }
  }
  if (victim == nullptr) return std::nullopt;
  auto spec = victim->steal_one();
  if (spec) {
    stolen_.fetch_add(1, std::memory_order_relaxed);
    util::bump(ctr_stolen_);
  }
  return spec;
}

bool StealGroup::siblings_drained(const Foreman* self) const {
  std::lock_guard lock(mutex_);
  for (const Foreman* m : members_) {
    if (m == self) continue;
    if (!m->local_drained()) return false;
  }
  return true;
}

// ---- Foreman ----------------------------------------------------------------

Foreman::Foreman(std::string name, TaskSource& upstream, std::size_t window,
                 StealGroup* steal)
    : name_(std::move(name)),
      upstream_(upstream),
      local_(window == 0 ? 1 : window),
      group_(steal) {
  if (group_) group_->add(this);
  pump_thread_ = std::thread([this] { pump(); });
}

Foreman::~Foreman() { shutdown(); }

void Foreman::bind_counters(util::CounterRegistry& registry) {
  ctr_relayed_ = &registry.counter("wq.foreman.relayed");
  ctr_dispatched_ = &registry.counter("wq.foreman.dispatched");
  ctr_evicted_ = &registry.counter("wq.foreman.evicted");
}

void Foreman::shutdown() {
  stopping_.store(true, std::memory_order_release);
  // Unregister before touching the window: remove() blocks until any
  // in-flight steal against us finishes, so from here on every buffered
  // task is ours alone to account for.
  if (group_) group_->remove(this);
  // Close before joining: the pump may be blocked in a bounded send, which
  // close() unblocks (that one in-flight task is dropped and reported
  // below via the pump's own eviction path).
  local_.close();
  if (pump_thread_.joinable()) pump_thread_.join();
  // Tasks still buffered when a foreman dies are lost downstream; report
  // them upward as evicted so the master's accounting stays exact and the
  // application resubmits them.
  while (auto spec = local_.try_receive()) {
    evicted_.fetch_add(1, std::memory_order_acq_rel);
    util::bump(ctr_evicted_);
    TaskResult r;
    r.id = spec->id;
    r.tag = spec->tag;
    r.worker_name = name_;
    r.evicted = true;
    r.exit_code = static_cast<int>(TaskExit::Evicted);
    deliver(std::move(r));
  }
}

void Foreman::pump() {
  while (!stopping_.load(std::memory_order_acquire)) {
    auto spec = upstream_.next_task(50ms);
    if (!spec) {
      if (upstream_.drained()) {
        local_.close();
        return;
      }
      continue;
    }
    const std::uint64_t id = spec->id;
    std::string tag = spec->tag;
    // Bounded send: backpressure when our workers are slower than the
    // master can hand out work.  A false return means the foreman was shut
    // down mid-send: report the task as evicted so it is not lost.  Only a
    // successful send counts as relayed — a task evicted mid-send never
    // entered the window, and counting it would overstate throughput by
    // one per shutdown.
    if (!local_.send(std::move(*spec))) {
      TaskResult r;
      r.id = id;
      r.tag = std::move(tag);
      r.worker_name = name_;
      r.evicted = true;
      r.exit_code = static_cast<int>(TaskExit::Evicted);
      deliver(std::move(r));
      return;
    }
    relayed_.fetch_add(1, std::memory_order_acq_rel);
    util::bump(ctr_relayed_);
  }
}

std::optional<TaskSpec> Foreman::next_task(std::chrono::milliseconds wait) {
  if (auto spec = local_.receive_for(wait)) {
    dispatched_.fetch_add(1, std::memory_order_acq_rel);
    util::bump(ctr_dispatched_);
    return spec;
  }
  // Local window empty: an idle foreman's workers may steal a buffered task
  // from a sibling through the common ancestor's steal group.
  if (group_ != nullptr && !stopping_.load(std::memory_order_acquire)) {
    if (auto spec = group_->steal_for(this)) {
      stolen_.fetch_add(1, std::memory_order_acq_rel);
      return spec;
    }
    // Once our window is closed-and-empty receive_for returns immediately;
    // back off so the worker loop doesn't hot-spin steal attempts while
    // siblings finish draining.
    if (local_.drained()) std::this_thread::sleep_for(1ms);
  }
  return std::nullopt;
}

bool Foreman::drained() const {
  if (!local_.drained()) return false;
  if (stopping_.load(std::memory_order_acquire)) return true;
  return group_ == nullptr || group_->siblings_drained(this);
}

std::optional<TaskSpec> Foreman::steal_one() {
  auto spec = local_.try_receive();
  if (spec) stolen_from_.fetch_add(1, std::memory_order_acq_rel);
  return spec;
}

void Foreman::deliver(TaskResult result) {
  results_.fetch_add(1, std::memory_order_acq_rel);
  upstream_.deliver(std::move(result));
}

}  // namespace lobster::wq

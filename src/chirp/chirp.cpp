#include "chirp/chirp.hpp"

#include <cstdio>

namespace lobster::chirp {

namespace {
bool path_in_scope(const std::string& scope, const std::string& path) {
  if (scope == "/" || scope.empty()) return true;
  if (path.size() < scope.size()) return false;
  if (path.compare(0, scope.size(), scope) != 0) return false;
  return path.size() == scope.size() || path[scope.size()] == '/' ||
         scope.back() == '/';
}
}  // namespace

void MemoryBackend::put(const std::string& path, std::string content) {
  files_[path] = std::move(content);
}

std::string MemoryBackend::get(const std::string& path) {
  const auto it = files_.find(path);
  if (it == files_.end()) throw ChirpError("chirp: no such file " + path);
  return it->second;
}

bool MemoryBackend::exists(const std::string& path) {
  return files_.count(path) > 0;
}

void MemoryBackend::remove(const std::string& path) {
  if (files_.erase(path) == 0)
    throw ChirpError("chirp: no such file " + path);
}

std::vector<FileInfo> MemoryBackend::list(const std::string& prefix) {
  std::vector<FileInfo> out;
  for (auto it = files_.lower_bound(prefix);
       it != files_.end() && it->first.compare(0, prefix.size(), prefix) == 0;
       ++it)
    out.push_back(FileInfo{it->first, it->second.size()});
  return out;
}

ChirpServer::ChirpServer(std::ptrdiff_t max_connections,
                         std::unique_ptr<StorageBackend> backend)
    : connections_(max_connections),
      backend_(backend ? std::move(backend)
                       : std::make_unique<MemoryBackend>()) {
  if (max_connections <= 0)
    throw std::invalid_argument("chirp: max_connections must be positive");
}

std::string ChirpServer::issue_ticket(const std::string& scope, Rights rights) {
  std::lock_guard lock(mutex_);
  char buf[64];
  std::snprintf(buf, sizeof buf, "ticket-%08llx",
                static_cast<unsigned long long>(next_ticket_++));
  tickets_[buf] = Ticket{scope, rights};
  return buf;
}

void ChirpServer::revoke_ticket(const std::string& ticket) {
  std::lock_guard lock(mutex_);
  tickets_.erase(ticket);
}

ChirpServer::Session ChirpServer::connect(const std::string& ticket) {
  Ticket t;
  {
    std::lock_guard lock(mutex_);
    const auto it = tickets_.find(ticket);
    if (it == tickets_.end()) throw ChirpError("chirp: unknown ticket");
    t = it->second;
  }
  connections_.acquire();  // blocks at the connection limit
  return Session(this, t.scope, t.rights);
}

ChirpServer::Session::Session(ChirpServer* server, std::string scope,
                              Rights rights)
    : server_(server), scope_(std::move(scope)), rights_(rights) {}

ChirpServer::Session::Session(Session&& o) noexcept
    : server_(o.server_), scope_(std::move(o.scope_)), rights_(o.rights_) {
  o.server_ = nullptr;
}

ChirpServer::Session::~Session() {
  if (server_) server_->connections_.release();
}

void ChirpServer::check_scope(const std::string& scope,
                              const std::string& path) const {
  if (!path_in_scope(scope, path))
    throw ChirpError("chirp: path " + path + " outside ticket scope " + scope);
}

void ChirpServer::bind_counters(util::CounterRegistry& registry) {
  ctr_requests_ = &registry.counter("chirp.server.requests");
  ctr_bytes_in_ = &registry.gauge("chirp.server.bytes_in");
  ctr_bytes_out_ = &registry.gauge("chirp.server.bytes_out");
}

void ChirpServer::Session::put(const std::string& path, std::string content) {
  if (!has_right(rights_, Rights::Write))
    throw ChirpError("chirp: ticket lacks write right");
  server_->check_scope(scope_, path);
  std::lock_guard lock(server_->mutex_);
  ++server_->requests_;
  util::bump(server_->ctr_requests_);
  server_->bytes_in_ += static_cast<double>(content.size());
  util::bump(server_->ctr_bytes_in_, static_cast<double>(content.size()));
  server_->backend_->put(path, std::move(content));
}

void ChirpServer::Session::append(const std::string& path,
                                  const std::string& content) {
  if (!has_right(rights_, Rights::Write))
    throw ChirpError("chirp: ticket lacks write right");
  server_->check_scope(scope_, path);
  std::lock_guard lock(server_->mutex_);
  ++server_->requests_;
  util::bump(server_->ctr_requests_);
  server_->bytes_in_ += static_cast<double>(content.size());
  util::bump(server_->ctr_bytes_in_, static_cast<double>(content.size()));
  std::string merged =
      server_->backend_->exists(path) ? server_->backend_->get(path) : "";
  merged += content;
  server_->backend_->put(path, std::move(merged));
}

std::string ChirpServer::Session::get(const std::string& path) const {
  if (!has_right(rights_, Rights::Read))
    throw ChirpError("chirp: ticket lacks read right");
  server_->check_scope(scope_, path);
  std::lock_guard lock(server_->mutex_);
  ++server_->requests_;
  util::bump(server_->ctr_requests_);
  std::string content = server_->backend_->get(path);
  server_->bytes_out_ += static_cast<double>(content.size());
  util::bump(server_->ctr_bytes_out_, static_cast<double>(content.size()));
  return content;
}

FileInfo ChirpServer::Session::stat(const std::string& path) const {
  if (!has_right(rights_, Rights::Read))
    throw ChirpError("chirp: ticket lacks read right");
  server_->check_scope(scope_, path);
  std::lock_guard lock(server_->mutex_);
  ++server_->requests_;
  util::bump(server_->ctr_requests_);
  if (!server_->backend_->exists(path))
    throw ChirpError("chirp: no such file " + path);
  return FileInfo{path, server_->backend_->get(path).size()};
}

std::vector<FileInfo> ChirpServer::Session::list(
    const std::string& prefix) const {
  if (!has_right(rights_, Rights::List))
    throw ChirpError("chirp: ticket lacks list right");
  server_->check_scope(scope_, prefix);
  std::lock_guard lock(server_->mutex_);
  ++server_->requests_;
  util::bump(server_->ctr_requests_);
  return server_->backend_->list(prefix);
}

void ChirpServer::Session::remove(const std::string& path) {
  if (!has_right(rights_, Rights::Write))
    throw ChirpError("chirp: ticket lacks write right");
  server_->check_scope(scope_, path);
  std::lock_guard lock(server_->mutex_);
  ++server_->requests_;
  util::bump(server_->ctr_requests_);
  server_->backend_->remove(path);
}

std::uint64_t ChirpServer::total_requests() const {
  std::lock_guard lock(mutex_);
  return requests_;
}

double ChirpServer::bytes_in() const {
  std::lock_guard lock(mutex_);
  return bytes_in_;
}

double ChirpServer::bytes_out() const {
  std::lock_guard lock(mutex_);
  return bytes_out_;
}

std::size_t ChirpServer::num_files() const {
  std::lock_guard lock(mutex_);
  return backend_->list("").size();
}

ChirpSim::ChirpSim(des::Simulation& sim, const Params& params)
    : sim_(sim),
      params_(params),
      connections_(sim, params.max_connections),
      nic_(sim, params.nic_rate),
      ctr_puts_(&sim.counters().counter("chirp.sim.puts")),
      ctr_gets_(&sim.counters().counter("chirp.sim.gets")),
      ctr_bytes_in_(&sim.counters().gauge("chirp.sim.bytes_in")),
      ctr_bytes_out_(&sim.counters().gauge("chirp.sim.bytes_out")) {}

des::Task<double> ChirpSim::transfer(double bytes, double& accounting,
                                     util::Gauge* volume) {
  const double t0 = sim_.now();
  auto slot = co_await connections_.acquire();
  co_await sim_.delay(params_.request_latency);
  co_await nic_.transfer(bytes);
  accounting += bytes;
  volume->add(bytes);
  const double wall = sim_.now() - t0;
  const double unloaded = params_.request_latency + bytes / params_.nic_rate;
  slowdown_sum_ += wall / unloaded;
  ++completed_;
  co_return wall;
}

des::Task<double> ChirpSim::put(double bytes) {
  ctr_puts_->add();
  return transfer(bytes, bytes_in_, ctr_bytes_in_);
}

des::Task<double> ChirpSim::get(double bytes) {
  ctr_gets_->add();
  return transfer(bytes, bytes_out_, ctr_bytes_out_);
}

double ChirpSim::mean_slowdown() const {
  return completed_ ? slowdown_sum_ / static_cast<double>(completed_) : 1.0;
}

}  // namespace lobster::chirp

// hdfs_backend.hpp — the production wiring of paper §4.2: Chirp in front of
// a Hadoop storage cluster.  Writes through the Chirp namespace land as
// replicated blocks in hdfs::Cluster, so task outputs survive datanode loss
// and the Map-Reduce merge path reads them in place.
#pragma once

#include "chirp/chirp.hpp"
#include "hdfs/hdfs.hpp"

namespace lobster::chirp {

class HdfsBackend final : public StorageBackend {
 public:
  /// `cluster` must outlive the backend (it is typically shared with the
  /// Map-Reduce merge pipeline).
  explicit HdfsBackend(hdfs::Cluster& cluster) : cluster_(&cluster) {}

  void put(const std::string& path, std::string content) override;
  std::string get(const std::string& path) override;
  bool exists(const std::string& path) override;
  void remove(const std::string& path) override;
  std::vector<FileInfo> list(const std::string& prefix) override;

  hdfs::Cluster& cluster() { return *cluster_; }

 private:
  hdfs::Cluster* cluster_;
};

}  // namespace lobster::chirp

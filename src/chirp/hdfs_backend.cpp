#include "chirp/hdfs_backend.hpp"

namespace lobster::chirp {

void HdfsBackend::put(const std::string& path, std::string content) {
  try {
    cluster_->put(path, std::move(content));
  } catch (const hdfs::HdfsError& e) {
    throw ChirpError(std::string("chirp/hdfs: ") + e.what());
  }
}

std::string HdfsBackend::get(const std::string& path) {
  try {
    return cluster_->get(path);
  } catch (const hdfs::HdfsError&) {
    throw ChirpError("chirp: no such file " + path);
  }
}

bool HdfsBackend::exists(const std::string& path) {
  return cluster_->exists(path);
}

void HdfsBackend::remove(const std::string& path) {
  try {
    cluster_->remove(path);
  } catch (const hdfs::HdfsError&) {
    throw ChirpError("chirp: no such file " + path);
  }
}

std::vector<FileInfo> HdfsBackend::list(const std::string& prefix) {
  std::vector<FileInfo> out;
  for (const auto& st : cluster_->list(prefix))
    out.push_back(FileInfo{st.path, st.size});
  return out;
}

}  // namespace lobster::chirp

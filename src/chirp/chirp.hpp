// chirp.hpp — a Chirp-style user-level file server (paper §4.2, §4.4, §6).
//
// Lobster puts a Chirp server in front of the backend Hadoop storage so
// thousands of concurrent tasks can stage their output without overloading
// Work Queue's own data handling.  Two implementations:
//
//  * ChirpServer — a real, thread-safe in-memory file service with the
//    pieces Lobster relies on: hierarchical namespace, put/get/stat/list,
//    ticket-based access control (opportunistic users have no privileged
//    accounts), and a concurrent-connection limit.
//
//  * ChirpSim — the DES cost model: a connection-limited server whose NIC is
//    a shared BandwidthLink.  Limited concurrency + synchronized waves of
//    finishing tasks produce the periodic stage-out delays of Figure 11.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <semaphore>
#include <stdexcept>
#include <string>
#include <vector>

#include "des/bandwidth.hpp"
#include "des/resource.hpp"
#include "des/simulation.hpp"
#include "des/task.hpp"
#include "util/thread_annotations.hpp"
#include "util/trace.hpp"

namespace lobster::chirp {

struct ChirpError : std::runtime_error {
  explicit ChirpError(const std::string& what) : std::runtime_error(what) {}
};

/// Access rights attached to a ticket.
enum class Rights : unsigned {
  None = 0,
  Read = 1u << 0,
  Write = 1u << 1,
  List = 1u << 2,
  Admin = 1u << 3,
};
constexpr Rights operator|(Rights a, Rights b) {
  return static_cast<Rights>(static_cast<unsigned>(a) |
                             static_cast<unsigned>(b));
}
constexpr bool has_right(Rights granted, Rights needed) {
  return (static_cast<unsigned>(granted) & static_cast<unsigned>(needed)) ==
         static_cast<unsigned>(needed);
}

/// File metadata returned by stat().
struct FileInfo {
  std::string path;
  std::uint64_t size = 0;
};

/// Storage behind the Chirp namespace.  The production deployment fronts a
/// Hadoop cluster (paper §4.2: "we use a Chirp user level file server to
/// provide access to a backend Hadoop cluster"); tests and small setups use
/// plain memory.  Implementations must be thread safe or rely on the
/// server's locking (the server serialises all backend calls).
class StorageBackend {
 public:
  virtual ~StorageBackend() = default;
  virtual void put(const std::string& path, std::string content) = 0;
  /// Throws ChirpError when absent (or unreadable).
  virtual std::string get(const std::string& path) = 0;
  virtual bool exists(const std::string& path) = 0;
  /// Throws ChirpError when absent.
  virtual void remove(const std::string& path) = 0;
  /// (path, size) under a prefix, sorted by path.
  virtual std::vector<FileInfo> list(const std::string& prefix) = 0;
};

/// Default backend: an in-memory map.
class MemoryBackend final : public StorageBackend {
 public:
  void put(const std::string& path, std::string content) override;
  std::string get(const std::string& path) override;
  bool exists(const std::string& path) override;
  void remove(const std::string& path) override;
  std::vector<FileInfo> list(const std::string& prefix) override;

 private:
  std::map<std::string, std::string> files_;
};

/// Real Chirp server over a pluggable storage backend.
class ChirpServer {
 public:
  /// `max_connections` bounds concurrent sessions, as the production server
  /// does to "keep the underlying hardware from becoming completely
  /// unresponsive" (paper §6).  Default backend: memory.
  explicit ChirpServer(std::ptrdiff_t max_connections = 64,
                       std::unique_ptr<StorageBackend> backend = nullptr);

  /// Issue a ticket granting `rights` under the subtree `scope`.
  /// Returns the ticket string clients authenticate with.
  std::string issue_ticket(const std::string& scope, Rights rights);
  void revoke_ticket(const std::string& ticket);

  /// A client session; RAII holds one connection slot.
  class Session {
   public:
    ~Session();
    Session(Session&&) noexcept;
    Session(const Session&) = delete;
    Session& operator=(const Session&) = delete;
    Session& operator=(Session&&) = delete;

    void put(const std::string& path, std::string content);
    std::string get(const std::string& path) const;
    /// Append to an existing file (creates it when absent) — merge tasks
    /// use this to concatenate outputs.
    void append(const std::string& path, const std::string& content);
    FileInfo stat(const std::string& path) const;
    std::vector<FileInfo> list(const std::string& prefix) const;
    void remove(const std::string& path);

   private:
    friend class ChirpServer;
    Session(ChirpServer* server, std::string scope, Rights rights);
    ChirpServer* server_;
    std::string scope_;
    Rights rights_;
  };

  /// Open a session with a ticket; blocks while the server is at its
  /// connection limit; throws ChirpError on an unknown ticket.
  Session connect(const std::string& ticket);

  [[nodiscard]] std::uint64_t total_requests() const;
  [[nodiscard]] double bytes_in() const;
  [[nodiscard]] double bytes_out() const;
  [[nodiscard]] std::size_t num_files() const;

  /// Attach the unified counter plane (chirp.server.*).  Optional; the
  /// server runs fine without one.
  void bind_counters(util::CounterRegistry& registry);

 private:
  friend class Session;
  void check_scope(const std::string& scope, const std::string& path) const;

  mutable std::mutex mutex_;
  std::counting_semaphore<1 << 20> connections_;
  // The server serialises all backend calls (see StorageBackend).
  std::unique_ptr<StorageBackend> backend_ LOBSTER_PT_GUARDED_BY(mutex_);
  struct Ticket {
    std::string scope;
    Rights rights;
  };
  std::map<std::string, Ticket> tickets_ LOBSTER_GUARDED_BY(mutex_);
  std::uint64_t next_ticket_ LOBSTER_GUARDED_BY(mutex_) = 1;
  std::uint64_t requests_ LOBSTER_GUARDED_BY(mutex_) = 0;
  double bytes_in_ LOBSTER_GUARDED_BY(mutex_) = 0.0;
  double bytes_out_ LOBSTER_GUARDED_BY(mutex_) = 0.0;
  util::Counter* ctr_requests_ LOBSTER_NOT_GUARDED(target is atomic) = nullptr;
  util::Gauge* ctr_bytes_in_ LOBSTER_NOT_GUARDED(target is atomic) = nullptr;
  util::Gauge* ctr_bytes_out_ LOBSTER_NOT_GUARDED(target is atomic) = nullptr;
};

/// DES model of the Chirp server in front of Hadoop.
class ChirpSim {
 public:
  struct Params {
    /// Concurrent transfers admitted; the rest queue FIFO.
    std::int64_t max_connections = 16;
    /// Server NIC, shared by admitted transfers.
    double nic_rate = 1.25e9;  // 10 Gbit/s
    /// Per-request fixed cost (connect, auth, namespace ops).
    double request_latency = 0.2;
  };

  ChirpSim(des::Simulation& sim, const Params& params);

  /// Transfer `bytes` to (put) or from (get) the server; returns wall time.
  des::Task<double> put(double bytes);
  des::Task<double> get(double bytes);

  des::Resource& connections() { return connections_; }
  [[nodiscard]] double bytes_in() const { return bytes_in_; }
  [[nodiscard]] double bytes_out() const { return bytes_out_; }
  /// Mean over completed requests of (wall time / unloaded time) — a
  /// direct overload indicator used by the monitoring advisor.
  double mean_slowdown() const;

 private:
  des::Task<double> transfer(double bytes, double& accounting,
                             util::Gauge* volume);

  des::Simulation& sim_;
  Params params_;
  des::Resource connections_;
  des::BandwidthLink nic_;
  double bytes_in_ = 0.0;
  double bytes_out_ = 0.0;
  double slowdown_sum_ = 0.0;
  std::uint64_t completed_ = 0;
  // Unified counter plane (chirp.*).
  util::Counter* ctr_puts_;
  util::Counter* ctr_gets_;
  util::Gauge* ctr_bytes_in_;
  util::Gauge* ctr_bytes_out_;
};

}  // namespace lobster::chirp

// table.hpp — ASCII table renderer used by every bench binary to print the
// rows/series of the paper's figures and tables in a uniform format.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace lobster::util {

/// Column-aligned ASCII table.  Usage:
///   Table t({"Task Phase", "Time (h)", "Fraction (%)"});
///   t.row({"Task CPU Time", "171036", "53.4"});
///   std::puts(t.str().c_str());
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void row(std::vector<std::string> cells);
  /// Convenience numeric-cell formatter.
  static std::string num(double v, int precision = 1);
  static std::string integer(long long v);

  std::size_t rows() const { return rows_.size(); }
  std::string str() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Simple horizontal bar for timeline output: value scaled to max_width
/// chars of fill_char.
std::string bar(double value, double max_value, std::size_t max_width = 50,
                char fill_char = '#');

}  // namespace lobster::util

#include "util/parse.hpp"

#include <cctype>
#include <stdexcept>

namespace lobster::util {

namespace {
std::string trimmed(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}
}  // namespace

std::optional<long long> parse_int_strict(const std::string& text) {
  const std::string t = trimmed(text);
  if (t.empty()) return std::nullopt;
  std::size_t used = 0;
  long long v = 0;
  try {
    v = std::stoll(t, &used);
  } catch (const std::exception&) {
    return std::nullopt;
  }
  if (used != t.size()) return std::nullopt;
  return v;
}

std::optional<double> parse_double_strict(const std::string& text) {
  const std::string t = trimmed(text);
  if (t.empty()) return std::nullopt;
  std::size_t used = 0;
  double v = 0.0;
  try {
    v = std::stod(t, &used);
  } catch (const std::exception&) {
    return std::nullopt;
  }
  if (used != t.size()) return std::nullopt;
  return v;
}

long long require_int(const std::string& text, const std::string& what) {
  const auto v = parse_int_strict(text);
  if (!v)
    throw std::invalid_argument(what + ": non-numeric value '" + text + "'");
  return *v;
}

double require_double(const std::string& text, const std::string& what) {
  const auto v = parse_double_strict(text);
  if (!v)
    throw std::invalid_argument(what + ": non-numeric value '" + text + "'");
  return *v;
}

}  // namespace lobster::util

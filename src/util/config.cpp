#include "util/config.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/parse.hpp"

namespace lobster::util {

namespace {
std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string lower(std::string s) {
  for (auto& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

// Strip a trailing comment that is not inside quotes.
std::string strip_comment(const std::string& s) {
  bool quoted = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '"') quoted = !quoted;
    if (!quoted && (s[i] == '#' || s[i] == ';')) return s.substr(0, i);
  }
  return s;
}
}  // namespace

Config Config::parse(const std::string& text) {
  Config cfg;
  std::istringstream in(text);
  std::string line;
  std::string section;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    line = trim(strip_comment(line));
    if (line.empty()) continue;
    if (line.front() == '[') {
      if (line.back() != ']')
        throw std::runtime_error("config: unterminated section header at line " +
                                 std::to_string(lineno));
      section = trim(line.substr(1, line.size() - 2));
      if (section.empty())
        throw std::runtime_error("config: empty section name at line " +
                                 std::to_string(lineno));
      // Register the section even if it has no keys.
      cfg.data_[section];
      continue;
    }
    const auto eq = line.find('=');
    if (eq == std::string::npos)
      throw std::runtime_error("config: expected key=value at line " +
                               std::to_string(lineno));
    std::string key = trim(line.substr(0, eq));
    std::string value = trim(line.substr(eq + 1));
    if (key.empty())
      throw std::runtime_error("config: empty key at line " +
                               std::to_string(lineno));
    if (value.size() >= 2 && value.front() == '"' && value.back() == '"')
      value = value.substr(1, value.size() - 2);
    cfg.data_[section][key] = value;
  }
  return cfg;
}

Config Config::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("config: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse(buf.str());
}

void Config::set(const std::string& section, const std::string& key,
                 const std::string& value) {
  data_[section][key] = value;
}

bool Config::has(const std::string& section, const std::string& key) const {
  const auto s = data_.find(section);
  return s != data_.end() && s->second.count(key) > 0;
}

std::vector<std::string> Config::sections() const {
  std::vector<std::string> out;
  out.reserve(data_.size());
  for (const auto& [name, _] : data_) out.push_back(name);
  return out;
}

std::vector<std::string> Config::keys(const std::string& section) const {
  std::vector<std::string> out;
  const auto s = data_.find(section);
  if (s == data_.end()) return out;
  for (const auto& [k, _] : s->second) out.push_back(k);
  return out;
}

std::optional<std::string> Config::get(const std::string& section,
                                       const std::string& key) const {
  const auto s = data_.find(section);
  if (s == data_.end()) return std::nullopt;
  const auto k = s->second.find(key);
  if (k == s->second.end()) return std::nullopt;
  return k->second;
}

std::string Config::get_string(const std::string& section,
                               const std::string& key,
                               const std::string& fallback) const {
  return get(section, key).value_or(fallback);
}

std::int64_t Config::get_int(const std::string& section, const std::string& key,
                             std::int64_t fallback) const {
  const auto v = get(section, key);
  if (!v) return fallback;
  // strtoll would turn "abc" into 0 and "8x" into 8 without complaint —
  // a scenario typo must fail the run, not silently reshape it.
  const auto parsed = parse_int_strict(*v);
  if (!parsed)
    throw std::runtime_error("config: non-numeric value for " + section + "." +
                             key + ": '" + *v + "'");
  return *parsed;
}

double Config::get_double(const std::string& section, const std::string& key,
                          double fallback) const {
  const auto v = get(section, key);
  if (!v) return fallback;
  const auto parsed = parse_double_strict(*v);
  if (!parsed)
    throw std::runtime_error("config: non-numeric value for " + section + "." +
                             key + ": '" + *v + "'");
  return *parsed;
}

bool Config::get_bool(const std::string& section, const std::string& key,
                      bool fallback) const {
  const auto v = get(section, key);
  if (!v) return fallback;
  const std::string s = lower(trim(*v));
  if (s == "true" || s == "yes" || s == "on" || s == "1") return true;
  if (s == "false" || s == "no" || s == "off" || s == "0") return false;
  return fallback;
}

double Config::parse_duration(const std::string& text) {
  const std::string s = trim(text);
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  const std::string suffix = lower(trim(end ? std::string(end) : ""));
  if (suffix.empty() || suffix == "s" || suffix == "sec" || suffix == "seconds")
    return v;
  if (suffix == "m" || suffix == "min" || suffix == "minutes") return v * 60.0;
  if (suffix == "h" || suffix == "hr" || suffix == "hours") return v * 3600.0;
  if (suffix == "d" || suffix == "day" || suffix == "days") return v * 86400.0;
  throw std::runtime_error("config: bad duration suffix in '" + text + "'");
}

double Config::parse_size(const std::string& text) {
  const std::string s = trim(text);
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  const std::string suffix = lower(trim(end ? std::string(end) : ""));
  if (suffix.empty() || suffix == "b") return v;
  if (suffix == "kb") return v * 1e3;
  if (suffix == "mb") return v * 1e6;
  if (suffix == "gb") return v * 1e9;
  if (suffix == "tb") return v * 1e12;
  if (suffix == "kib") return v * 1024.0;
  if (suffix == "mib") return v * 1024.0 * 1024.0;
  if (suffix == "gib") return v * 1024.0 * 1024.0 * 1024.0;
  if (suffix == "tib") return v * 1024.0 * 1024.0 * 1024.0 * 1024.0;
  throw std::runtime_error("config: bad size suffix in '" + text + "'");
}

double Config::get_duration(const std::string& section, const std::string& key,
                            double fallback_seconds) const {
  const auto v = get(section, key);
  if (!v) return fallback_seconds;
  return parse_duration(*v);
}

double Config::get_size(const std::string& section, const std::string& key,
                        double fallback_bytes) const {
  const auto v = get(section, key);
  if (!v) return fallback_bytes;
  return parse_size(*v);
}

std::vector<std::string> Config::get_list(const std::string& section,
                                          const std::string& key) const {
  std::vector<std::string> out;
  const auto v = get(section, key);
  if (!v) return out;
  std::istringstream in(*v);
  std::string item;
  while (std::getline(in, item, ',')) {
    item = trim(item);
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

std::string Config::to_string() const {
  std::ostringstream out;
  for (const auto& [section, kv] : data_) {
    out << '[' << section << "]\n";
    for (const auto& [k, v] : kv) out << k << " = " << v << '\n';
    out << '\n';
  }
  return out.str();
}

}  // namespace lobster::util

// thread_pool.hpp — fixed-size worker pool used by the HDFS Map-Reduce-lite
// runtime and by tests that need background execution.  Tasks are plain
// std::function<void()>; wait() blocks until all submitted tasks complete.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/channel.hpp"
#include "util/thread_annotations.hpp"

namespace lobster::util {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task.  Returns false if the pool is shutting down.
  bool submit(std::function<void()> task);

  /// Block until every task submitted so far has finished.
  void wait();

  /// Stop accepting tasks, finish what is queued, join the threads.
  void shutdown();

  std::size_t size() const { return threads_.size(); }

 private:
  void run();

  Channel<std::function<void()>> queue_
      LOBSTER_NOT_GUARDED(internally synchronized);
  std::vector<std::thread> threads_
      LOBSTER_NOT_GUARDED(written only in ctor and shutdown);
  std::mutex idle_mutex_;
  std::condition_variable idle_cv_;
  std::atomic<std::size_t> in_flight_{0};
  std::atomic<bool> stopping_{false};
};

}  // namespace lobster::util

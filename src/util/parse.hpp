// parse.hpp — strict whole-token numeric parsing.
//
// std::atoll/strtoll-style parsing turns "abc" into 0 and "8x" into 8
// without complaint; in a campaign driver that silently becomes "run the
// default scenario" instead of "reject the typo" (see parse_campaign_flags
// and the PR 3 misreporting fixes).  Every CLI flag, INI value and spec
// field that expects a number goes through these helpers: the WHOLE trimmed
// token must parse, or the caller gets nullopt / a loud exception.
#pragma once

#include <optional>
#include <string>

namespace lobster::util {

/// Parse the whole token (surrounding whitespace ignored) as a signed
/// integer.  nullopt on empty input, trailing garbage, or overflow.
[[nodiscard]] std::optional<long long> parse_int_strict(
    const std::string& text);

/// Parse the whole token (surrounding whitespace ignored) as a double.
/// nullopt on empty input, trailing garbage, or overflow.
[[nodiscard]] std::optional<double> parse_double_strict(
    const std::string& text);

/// Throwing wrappers: std::invalid_argument naming `what` (a flag or
/// config key) when the token does not parse strictly.
[[nodiscard]] long long require_int(const std::string& text,
                                    const std::string& what);
[[nodiscard]] double require_double(const std::string& text,
                                    const std::string& what);

}  // namespace lobster::util

#include "util/table.hpp"

#include <algorithm>

namespace lobster::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::integer(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", v);
  return buf;
}

std::string Table::str() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      widths[c] = std::max(widths[c], r[c].size());

  auto line = [&](const std::vector<std::string>& cells) {
    std::string out = "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      out += ' ' + cell + std::string(widths[c] - cell.size(), ' ') + " |";
    }
    return out + '\n';
  };

  std::string sep = "+";
  for (std::size_t c = 0; c < headers_.size(); ++c)
    sep += std::string(widths[c] + 2, '-') + "+";
  sep += '\n';

  std::string out = sep + line(headers_) + sep;
  for (const auto& r : rows_) out += line(r);
  out += sep;
  return out;
}

std::string bar(double value, double max_value, std::size_t max_width,
                char fill_char) {
  if (max_value <= 0.0 || value <= 0.0) return "";
  std::size_t n = static_cast<std::size_t>(value / max_value *
                                           static_cast<double>(max_width));
  n = std::min(n, max_width);
  return std::string(n, fill_char);
}

}  // namespace lobster::util

// histogram.hpp — fixed- and variable-bin histograms with the binomial error
// helper used by the Figure 2 reproduction ("uncertainties are estimated
// using the binomial model").
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace lobster::util {

/// A 1-D histogram over [lo, hi) with uniform or custom bin edges.
/// Out-of-range fills land in underflow/overflow counters.
class Histogram {
 public:
  /// Uniform binning: `nbins` bins spanning [lo, hi).
  Histogram(std::size_t nbins, double lo, double hi);
  /// Custom edges (ascending, at least two entries).
  explicit Histogram(std::vector<double> edges);

  void fill(double x, double weight = 1.0);

  std::size_t nbins() const { return counts_.size(); }
  double bin_lo(std::size_t i) const { return edges_[i]; }
  double bin_hi(std::size_t i) const { return edges_[i + 1]; }
  double bin_center(std::size_t i) const {
    return 0.5 * (edges_[i] + edges_[i + 1]);
  }
  double count(std::size_t i) const { return counts_[i]; }
  double underflow() const { return underflow_; }
  double overflow() const { return overflow_; }
  [[nodiscard]] double total() const;  ///< in-range weight only
  [[nodiscard]] std::size_t entries() const { return entries_; }

  /// Weighted mean of bin centres (ignores under/overflow).
  [[nodiscard]] double mean() const;

  /// Normalised copy: bin contents divided by total in-range weight.
  std::vector<double> density() const;

  /// Render a quick ASCII bar chart (for bench/diagnostic output).
  std::string ascii(std::size_t width = 50, const std::string& label = "") const;

 private:
  std::vector<double> edges_;
  std::vector<double> counts_;
  double underflow_ = 0.0;
  double overflow_ = 0.0;
  std::size_t entries_ = 0;
};

/// Binomial proportion and its standard error: p̂ = k/n,
/// σ = sqrt(p̂(1-p̂)/n).  This is the "binomial model" the Figure 2 caption
/// refers to for the eviction-probability uncertainties.
struct BinomialEstimate {
  double p = 0.0;
  double sigma = 0.0;
};
BinomialEstimate binomial_estimate(double successes, double trials);

/// A time series binned on a uniform grid: used for the run timelines
/// (tasks running / completed / failed per time unit, Figures 10 and 11).
class TimeSeries {
 public:
  TimeSeries(double t0, double bin_width);

  /// Add `value` to the bin containing time t (extends the grid as needed).
  void add(double t, double value = 1.0);
  /// Record an instantaneous level sample (for gauges like "tasks running");
  /// bins report the mean of samples falling inside them.
  void sample(double t, double level);

  std::size_t nbins() const { return sums_.size(); }
  double bin_start(std::size_t i) const {
    return t0_ + static_cast<double>(i) * width_;
  }
  double bin_width() const { return width_; }
  /// Sum of `add`ed values in bin i.
  double sum(std::size_t i) const { return i < sums_.size() ? sums_[i] : 0.0; }
  /// Mean of `sample`d levels in bin i (0 when no samples).
  double mean_level(std::size_t i) const;
  double max_sum() const;
  [[nodiscard]] double total() const;

 private:
  void ensure(std::size_t i);
  double t0_;
  double width_;
  std::vector<double> sums_;
  std::vector<double> level_sums_;
  std::vector<std::uint64_t> level_counts_;
};

}  // namespace lobster::util

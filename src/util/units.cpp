#include "util/units.hpp"

#include <cmath>
#include <cstdio>

namespace lobster::util {

std::string format_duration(double s) {
  char buf[64];
  if (s < 0) return "-" + format_duration(-s);
  if (s < 60.0) {
    std::snprintf(buf, sizeof buf, "%.1fs", s);
  } else if (s < 3600.0) {
    int m = static_cast<int>(s / 60.0);
    int sec = static_cast<int>(s) % 60;
    std::snprintf(buf, sizeof buf, "%dm%02ds", m, sec);
  } else if (s < 86400.0) {
    int h = static_cast<int>(s / 3600.0);
    int m = (static_cast<int>(s) % 3600) / 60;
    std::snprintf(buf, sizeof buf, "%dh%02dm", h, m);
  } else {
    int d = static_cast<int>(s / 86400.0);
    int h = (static_cast<int>(s) % 86400) / 3600;
    std::snprintf(buf, sizeof buf, "%dd%02dh", d, h);
  }
  return buf;
}

std::string format_bytes(double b) {
  char buf[64];
  const char* suffix[] = {"B", "kB", "MB", "GB", "TB", "PB"};
  int i = 0;
  double v = b;
  while (std::fabs(v) >= 1000.0 && i < 5) {
    v /= 1000.0;
    ++i;
  }
  if (i == 0)
    std::snprintf(buf, sizeof buf, "%.0f %s", v, suffix[i]);
  else
    std::snprintf(buf, sizeof buf, "%.2f %s", v, suffix[i]);
  return buf;
}

std::string format_rate(double bps) { return format_bytes(bps) + "/s"; }

}  // namespace lobster::util

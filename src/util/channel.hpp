// channel.hpp — a bounded/unbounded MPMC blocking queue used as the message
// channel between the real (thread-based) Work Queue master, foremen and
// workers.  Closing the channel wakes all blocked receivers; receive returns
// nullopt once the channel is closed and drained.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "util/thread_annotations.hpp"

namespace lobster::util {

template <typename T>
class Channel {
 public:
  /// capacity == 0 means unbounded.
  explicit Channel(std::size_t capacity = 0) : capacity_(capacity) {}

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Returns false when the channel has been closed (the item is dropped).
  /// (unique_lock + cv wait: outside clang's attribute analysis; the
  /// lexical lobster_lint tracker still checks these bodies.)
  bool send(T item) LOBSTER_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock, [&]() LOBSTER_NO_THREAD_SAFETY_ANALYSIS {
      return closed_ || capacity_ == 0 || queue_.size() < capacity_;
    });
    if (closed_) return false;
    queue_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking send; returns false when full or closed.
  bool try_send(T item) LOBSTER_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock lock(mutex_);
    if (closed_ || (capacity_ != 0 && queue_.size() >= capacity_)) return false;
    queue_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the channel is closed and empty.
  std::optional<T> receive() LOBSTER_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [&]() LOBSTER_NO_THREAD_SAFETY_ANALYSIS {
      return closed_ || !queue_.empty();
    });
    if (queue_.empty()) return std::nullopt;
    T item = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Timed receive: waits up to `timeout` for an item; nullopt on timeout
  /// or when closed and drained (check drained() to distinguish).
  std::optional<T> receive_for(std::chrono::milliseconds timeout)
      LOBSTER_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock lock(mutex_);
    not_empty_.wait_for(lock, timeout, [&]() LOBSTER_NO_THREAD_SAFETY_ANALYSIS {
      return closed_ || !queue_.empty();
    });
    if (queue_.empty()) return std::nullopt;
    T item = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// True once the channel is closed and every item has been consumed.
  bool drained() const {
    std::lock_guard lock(mutex_);
    return closed_ && queue_.empty();
  }

  /// Non-blocking receive.
  std::optional<T> try_receive() LOBSTER_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock lock(mutex_);
    if (queue_.empty()) return std::nullopt;
    T item = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return queue_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> queue_ LOBSTER_GUARDED_BY(mutex_);
  std::size_t capacity_ LOBSTER_NOT_GUARDED(immutable after construction);
  bool closed_ LOBSTER_GUARDED_BY(mutex_) = false;
};

}  // namespace lobster::util

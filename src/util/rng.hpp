// rng.hpp — deterministic random number generation for the reproduction.
//
// Every stochastic component in the system draws from a named stream derived
// from a scenario-level seed, so whole 10k-core simulated runs are
// reproducible bit-for-bit.  The core generator is xoshiro256**, which is
// fast, has a 256-bit state, and supports cheap stream splitting via
// SplitMix64 seeding.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace lobster::util {

/// SplitMix64 — used for seeding and for hashing stream names.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator.  Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seed from a single 64-bit value (expanded via SplitMix64).
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL);

  /// Derive a child stream for a named component: deterministic in
  /// (parent seed, name).  Use this to give every worker / server / model
  /// its own independent stream.
  Rng stream(std::string_view name) const;

  /// Derive a child stream for an indexed component (e.g. worker #i).
  Rng stream(std::string_view name, std::uint64_t index) const;

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()();

  // ---- distributions ------------------------------------------------------

  /// Uniform in [0, 1).
  double uniform();
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Standard normal via Box-Muller (cached spare).
  double normal();
  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev);
  /// Normal truncated below at `lo` (resample; used for task durations
  /// which must be positive).
  double truncated_normal(double mean, double stddev, double lo);
  /// Exponential with given mean (NOT rate).
  double exponential(double mean);
  /// Pareto (Lomax) with shape alpha and scale xm: heavy-tailed durations.
  double pareto(double alpha, double xm);
  /// Weibull with shape k and scale lambda — used for machine availability.
  double weibull(double k, double lambda);
  /// Log-normal parametrised by the mean/sigma of the underlying normal.
  double lognormal(double mu, double sigma);
  /// Bernoulli trial.
  bool chance(double p);
  /// Poisson-distributed count with given mean (Knuth for small, normal
  /// approximation for large means).
  std::int64_t poisson(double mean);
  /// Zipf-distributed integer in [1, n] with exponent s (popularity ranks).
  std::int64_t zipf(std::int64_t n, double s);
  /// Pick an index in [0, weights.size()) proportionally to weights.
  std::size_t weighted_index(const std::vector<double>& weights);

 private:
  std::uint64_t s_[4];
  double spare_normal_ = 0.0;
  bool has_spare_ = false;
  // Lazily built Zipf CDF cache, keyed on (n, s); rebuilt when params change.
  std::vector<double> zipf_cdf_;
  std::int64_t zipf_n_ = 0;
  double zipf_s_ = 0.0;
};

/// An empirical distribution built from samples: draws via inverse-CDF on
/// the sorted sample set (with linear interpolation between order
/// statistics).  Used to replay "observed" availability-time distributions
/// in the style of Figure 2/3.
class EmpiricalDistribution {
 public:
  EmpiricalDistribution() = default;
  explicit EmpiricalDistribution(std::vector<double> samples);

  bool empty() const { return sorted_.empty(); }
  std::size_t size() const { return sorted_.size(); }
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double mean() const;
  /// Empirical quantile, q in [0, 1].
  double quantile(double q) const;
  /// Draw a value using the supplied generator.
  double sample(Rng& rng) const;
  /// Empirical CDF evaluated at x.
  double cdf(double x) const;

 private:
  std::vector<double> sorted_;
};

}  // namespace lobster::util

#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <stdexcept>

namespace lobster::util {

Histogram::Histogram(std::size_t nbins, double lo, double hi) {
  if (nbins == 0 || !(lo < hi))
    throw std::invalid_argument("Histogram: need nbins>0 and lo<hi");
  edges_.resize(nbins + 1);
  for (std::size_t i = 0; i <= nbins; ++i)
    edges_[i] = lo + (hi - lo) * static_cast<double>(i) /
                         static_cast<double>(nbins);
  counts_.assign(nbins, 0.0);
}

Histogram::Histogram(std::vector<double> edges) : edges_(std::move(edges)) {
  if (edges_.size() < 2 || !std::is_sorted(edges_.begin(), edges_.end()))
    throw std::invalid_argument("Histogram: edges must be ascending, >= 2");
  counts_.assign(edges_.size() - 1, 0.0);
}

void Histogram::fill(double x, double weight) {
  ++entries_;
  if (x < edges_.front()) {
    underflow_ += weight;
    return;
  }
  if (x >= edges_.back()) {
    overflow_ += weight;
    return;
  }
  const auto it = std::upper_bound(edges_.begin(), edges_.end(), x);
  counts_[static_cast<std::size_t>(it - edges_.begin()) - 1] += weight;
}

double Histogram::total() const {
  return std::accumulate(counts_.begin(), counts_.end(), 0.0);
}

double Histogram::mean() const {
  double wsum = 0.0, sum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    wsum += counts_[i];
    sum += counts_[i] * bin_center(i);
  }
  return wsum > 0.0 ? sum / wsum : 0.0;
}

std::vector<double> Histogram::density() const {
  std::vector<double> out(counts_);
  const double t = total();
  if (t > 0.0)
    for (auto& v : out) v /= t;
  return out;
}

std::string Histogram::ascii(std::size_t width, const std::string& label) const {
  std::string out;
  if (!label.empty()) out += label + "\n";
  const double peak = *std::max_element(counts_.begin(), counts_.end());
  char line[256];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::size_t bar =
        peak > 0.0 ? static_cast<std::size_t>(counts_[i] / peak *
                                              static_cast<double>(width))
                   : 0;
    std::snprintf(line, sizeof line, "  [%10.3g, %10.3g) %10.3g |",
                  bin_lo(i), bin_hi(i), counts_[i]);
    out += line;
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

BinomialEstimate binomial_estimate(double successes, double trials) {
  BinomialEstimate e;
  if (trials <= 0.0) return e;
  e.p = successes / trials;
  e.sigma = std::sqrt(std::max(0.0, e.p * (1.0 - e.p) / trials));
  return e;
}

TimeSeries::TimeSeries(double t0, double bin_width) : t0_(t0), width_(bin_width) {
  if (!(bin_width > 0.0))
    throw std::invalid_argument("TimeSeries: bin width must be > 0");
}

void TimeSeries::ensure(std::size_t i) {
  if (i >= sums_.size()) {
    sums_.resize(i + 1, 0.0);
    level_sums_.resize(i + 1, 0.0);
    level_counts_.resize(i + 1, 0);
  }
}

void TimeSeries::add(double t, double value) {
  if (t < t0_) return;
  const std::size_t i = static_cast<std::size_t>((t - t0_) / width_);
  ensure(i);
  sums_[i] += value;
}

void TimeSeries::sample(double t, double level) {
  if (t < t0_) return;
  const std::size_t i = static_cast<std::size_t>((t - t0_) / width_);
  ensure(i);
  level_sums_[i] += level;
  level_counts_[i] += 1;
}

double TimeSeries::mean_level(std::size_t i) const {
  if (i >= level_sums_.size() || level_counts_[i] == 0) return 0.0;
  return level_sums_[i] / static_cast<double>(level_counts_[i]);
}

double TimeSeries::max_sum() const {
  double m = 0.0;
  for (double v : sums_) m = std::max(m, v);
  return m;
}

double TimeSeries::total() const {
  return std::accumulate(sums_.begin(), sums_.end(), 0.0);
}

}  // namespace lobster::util

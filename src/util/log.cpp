#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace lobster::util {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::Warn)};
std::mutex g_mutex;

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    default: return "?????";
  }
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void logf(LogLevel level, const char* component, const char* fmt, ...) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) return;
  char msg[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(msg, sizeof msg, fmt, args);
  va_end(args);
  std::lock_guard lock(g_mutex);
  std::fprintf(stderr, "[%s] %-14s %s\n", level_name(level), component, msg);
}

}  // namespace lobster::util

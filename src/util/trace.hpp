// trace.hpp — structured tracing and the unified counter plane (paper §5).
//
// "We have implemented a comprehensive monitoring system that covers almost
// every aspect of the system and the infrastructure."  core::Monitor holds
// the aggregates; this layer records *why an individual task was slow*: a
// per-task span timeline plus named counters, exported as JSONL (one event
// per line, machine-readable) or as Chrome trace events (load the file in
// Perfetto / chrome://tracing and scrub the task lifecycle visually).
//
// Design constraints, in priority order:
//
//  * Deterministic.  Spans are stamped with *simulated* time (the Tracer's
//    clock is bound to des::Simulation::now()), events are buffered in
//    memory and flushed on close, and doubles are printed with "%.17g" so a
//    run's trace file is bitwise identical no matter which campaign worker
//    thread executed it — the same contract the golden-metrics harness
//    pins for scalar metrics.
//  * Near-free when disabled.  With no sink installed, Tracer::span()
//    returns an inert Span (null tracer pointer, no clock read, no
//    allocation) and counters are plain relaxed atomics; the hot paths of
//    the DES kernel and the engine pay one predictable branch.
//  * One counter plane.  CounterRegistry serves both worlds: the
//    single-threaded DES models and the real multi-threaded wq/chirp/hdfs
//    substrate share the same named-counter type (atomics make it safe),
//    and snapshot() returns a name-ordered view for deterministic export.
//
// Counter naming convention: `<layer>.<subsystem>.<metric>` with
// lower_snake_case metrics, e.g. "cvmfs.squid.requests",
// "wq.master.dispatched", "lobsim.engine.tasklets_retried".  Monotonic event
// counts are Counters (integers); byte volumes and levels are Gauges
// (doubles).
#pragma once

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/thread_annotations.hpp"

namespace lobster::util {

// ---------------------------------------------------------------------------
// Export formats
// ---------------------------------------------------------------------------

enum class TraceFormat : std::uint8_t { Jsonl, Chrome };
const char* to_string(TraceFormat f);
/// ".jsonl" / ".json" — what a per-run trace file should end with.
const char* trace_extension(TraceFormat f);
/// Parse "jsonl" / "chrome"; throws std::invalid_argument otherwise.
TraceFormat parse_trace_format(const std::string& s);

/// One numeric key/value attached to a span end or instant event.  Keys are
/// string literals (span sites name them statically); values are doubles so
/// segment times survive the round trip exactly.
struct TraceArg {
  const char* key;
  double value;
};

// ---------------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------------

/// Where trace events go.  Implementations buffer in memory and write the
/// destination file in close() — one atomic flush keeps per-run files
/// bitwise deterministic and keeps file I/O off the simulation hot path.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void begin(const char* cat, const char* name, std::uint64_t track,
                     double t) = 0;
  virtual void end(const char* cat, const char* name, std::uint64_t track,
                   double t, const std::vector<TraceArg>& args) = 0;
  virtual void instant(const char* cat, const char* name, std::uint64_t track,
                       double t, const std::vector<TraceArg>& args) = 0;
  virtual void counter(const char* name, double t, double value) = 0;
  /// Flush the buffered events to the destination path (no-op when the
  /// path is empty — in-memory sinks for tests and benches).  Idempotent.
  virtual void close() = 0;
};

/// JSONL: one JSON object per line, `ev` is B/E/i/C, `t` is simulated
/// seconds.  The machine-readable format lobster_report and the tests
/// consume (read_trace_jsonl below round-trips it).
class JsonlTraceSink final : public TraceSink {
 public:
  /// `path` empty keeps the trace in memory only (see buffer()).
  explicit JsonlTraceSink(std::string path);

  void begin(const char* cat, const char* name, std::uint64_t track,
             double t) override;
  void end(const char* cat, const char* name, std::uint64_t track, double t,
           const std::vector<TraceArg>& args) override;
  void instant(const char* cat, const char* name, std::uint64_t track,
               double t, const std::vector<TraceArg>& args) override;
  void counter(const char* name, double t, double value) override;
  void close() override;

  [[nodiscard]] const std::string& buffer() const { return buf_; }

 private:
  std::string path_;
  std::string buf_;
  bool closed_ = false;
};

/// Chrome trace-event JSON: a {"traceEvents":[...]} array with microsecond
/// timestamps, pid 0 and the span's track as tid — loadable in Perfetto and
/// chrome://tracing.
class ChromeTraceSink final : public TraceSink {
 public:
  explicit ChromeTraceSink(std::string path);

  void begin(const char* cat, const char* name, std::uint64_t track,
             double t) override;
  void end(const char* cat, const char* name, std::uint64_t track, double t,
           const std::vector<TraceArg>& args) override;
  void instant(const char* cat, const char* name, std::uint64_t track,
               double t, const std::vector<TraceArg>& args) override;
  void counter(const char* name, double t, double value) override;
  void close() override;

  [[nodiscard]] const std::string& buffer() const { return buf_; }

 private:
  void event_prefix(char ph, const char* cat, const char* name,
                    std::uint64_t track, double t);

  std::string path_;
  std::string buf_;
  bool first_ = true;
  bool closed_ = false;
};

std::unique_ptr<TraceSink> make_trace_sink(TraceFormat format,
                                           std::string path);

// ---------------------------------------------------------------------------
// Tracer + RAII spans
// ---------------------------------------------------------------------------

class Tracer;

/// RAII span: begin event at construction, end event at destruction (or an
/// explicit end()), so spans stay balanced even when a task throws or a
/// coroutine frame unwinds at teardown.  Inert (null tracer) when tracing
/// is disabled: no clock read, no allocation.
class [[nodiscard]] Span {
 public:
  Span() = default;
  Span(Span&& o) noexcept
      : tracer_(o.tracer_), cat_(o.cat_), name_(o.name_), track_(o.track_),
        args_(std::move(o.args_)) {
    o.tracer_ = nullptr;
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span& operator=(Span&&) = delete;
  ~Span() { end(); }

  /// True when the span is live (tracing enabled and not yet ended).
  explicit operator bool() const { return tracer_ != nullptr; }

  /// Attach a numeric argument to the end event.  `key` must outlive the
  /// span (string literals at the call sites).  No-op when inert.
  void arg(const char* key, double value) {
    if (tracer_) args_.push_back({key, value});
  }

  /// Emit the end event now; the destructor becomes a no-op.
  void end();

 private:
  friend class Tracer;
  Span(Tracer* tracer, const char* cat, const char* name, std::uint64_t track)
      : tracer_(tracer), cat_(cat), name_(name), track_(track) {}

  Tracer* tracer_ = nullptr;
  const char* cat_ = nullptr;
  const char* name_ = nullptr;
  std::uint64_t track_ = 0;
  std::vector<TraceArg> args_;
};

/// The per-simulation event emitter.  Owned by des::Simulation; time comes
/// from a bound clock pointer (the simulation's now), so every event is
/// stamped with simulated seconds and the trace is independent of wall
/// time, thread scheduling, and host load.
class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Bind the time source (des::Simulation points this at its now).
  void bind_clock(const double* now) { clock_ = now; }
  /// Install (or clear) the sink.  Null disables tracing.
  void set_sink(std::unique_ptr<TraceSink> sink) { sink_ = std::move(sink); }
  [[nodiscard]] bool enabled() const { return sink_ != nullptr; }
  [[nodiscard]] TraceSink* sink() { return sink_.get(); }
  [[nodiscard]] double now() const { return clock_ ? *clock_ : 0.0; }

  /// Open a span on `track`; inert when disabled.
  Span span(const char* cat, const char* name, std::uint64_t track = 0) {
    if (!sink_) return Span();
    sink_->begin(cat, name, track, now());
    return Span(this, cat, name, track);
  }

  /// A zero-duration marker event.
  void instant(const char* cat, const char* name, std::uint64_t track = 0,
               std::initializer_list<TraceArg> args = {}) {
    if (!sink_) return;
    const std::vector<TraceArg> v(args);
    sink_->instant(cat, name, track, now(), v);
  }

  /// A counter sample (Perfetto renders these as a value track).
  void counter(const char* name, double value) {
    if (sink_) sink_->counter(name, now(), value);
  }

  /// Flush and detach the sink (the trace file is complete after this).
  void close() {
    if (!sink_) return;
    sink_->close();
    sink_.reset();
  }

 private:
  friend class Span;
  const double* clock_ = nullptr;
  std::unique_ptr<TraceSink> sink_;
};

inline void Span::end() {
  if (!tracer_) return;
  // The sink may already be flushed and detached (Tracer::close at the end
  // of a truncated run) while suspended coroutine frames still hold live
  // spans; their teardown must not touch the dead sink.
  if (tracer_->sink_)
    tracer_->sink_->end(cat_, name_, track_, tracer_->now(), args_);
  tracer_ = nullptr;
}

// ---------------------------------------------------------------------------
// Counter plane
// ---------------------------------------------------------------------------

/// A named monotonic event count.  Relaxed atomics: safe from the real
/// multi-threaded substrate (wq workers, chirp/hdfs servers) and free of
/// ordering side effects in the single-threaded DES models.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// A named double-valued level (byte volumes, occupancy).  add() is a CAS
/// loop so pre-C++20-atomic-float toolchains are not required.
class Gauge {
 public:
  void add(double d) noexcept {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
    }
  }
  void set(double d) noexcept { v_.store(d, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> v_{0.0};
};

/// Registry of named counters and gauges.  Registration (the map insert)
/// takes a mutex; the returned references are stable for the registry's
/// lifetime, so hot paths cache the pointer once and then touch only the
/// atomic.  Instances sharing a name share the counter — that is the
/// "unified plane": every squid of a site, every worker slot, and the
/// engine all accumulate into one namespace.
class CounterRegistry {
 public:
  CounterRegistry() = default;
  CounterRegistry(const CounterRegistry&) = delete;
  CounterRegistry& operator=(const CounterRegistry&) = delete;

  /// Find-or-create; the reference stays valid until the registry dies.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);

  struct Sample {
    std::string name;
    double value = 0.0;
    bool is_gauge = false;
  };
  /// Every counter and gauge, name-ordered (deterministic export order).
  [[nodiscard]] std::vector<Sample> snapshot() const;

  /// Windowed view: `after - before` for two name-ordered snapshots of the
  /// same registry.  The result carries one Sample per name in `after`
  /// (value = after minus before, 0 when the name is new); names present
  /// only in `before` are dropped — a registry never unregisters, so that
  /// case only arises when comparing unrelated registries.  This is the
  /// primitive behind "retries/s over the last 300 s": take a snapshot per
  /// advisor tick and diff against the previous one instead of scanning
  /// traces.
  [[nodiscard]] static std::vector<Sample> snapshot_delta(
      const std::vector<Sample>& before, const std::vector<Sample>& after);

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      LOBSTER_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      LOBSTER_GUARDED_BY(mutex_);
};

/// Exponentially-weighted moving-average *rate* of a cumulative total,
/// bound to simulated time: feed it (now, total) observations and read back
/// a smoothed events-per-second level whose memory decays with time
/// constant `tau` seconds.  Irregular sampling intervals are handled by the
/// standard alpha = 1 - exp(-dt/tau) correction, so an advisor ticking
/// every 300 s and a gauge sampler ticking every 60 s see consistent
/// semantics.  Pure arithmetic over doubles — deterministic wherever the
/// inputs are.
class EwmaRate {
 public:
  /// `tau` must be > 0 (seconds of smoothing memory).
  explicit EwmaRate(double tau) : tau_(tau > 0.0 ? tau : 1.0) {}

  /// Observe the cumulative total at simulated time `now`.  The first call
  /// only primes the baseline (rate stays 0); calls that do not advance
  /// time are ignored.  Returns the updated rate.
  double update(double now, double total);

  [[nodiscard]] double rate() const { return rate_; }
  [[nodiscard]] double tau() const { return tau_; }

 private:
  double tau_;
  double rate_ = 0.0;
  double last_t_ = 0.0;
  double last_total_ = 0.0;
  bool primed_ = false;
};

/// Null-tolerant increments for call sites whose registry wiring is
/// optional (the wq substrate binds counters only when a plane is
/// attached).
inline void bump(Counter* c, std::uint64_t n = 1) {
  if (c) c->add(n);
}
inline void bump(Gauge* g, double d) {
  if (g) g->add(d);
}

// ---------------------------------------------------------------------------
// Reading traces back (lobster_report, validation, tests)
// ---------------------------------------------------------------------------

/// One parsed JSONL trace event.
struct TraceEvent {
  char phase = '?';  ///< 'B' begin, 'E' end, 'i' instant, 'C' counter
  double t = 0.0;
  std::uint64_t track = 0;
  std::string cat;
  std::string name;
  double value = 0.0;  ///< counter events
  std::vector<std::pair<std::string, double>> args;

  /// Value of `key` in args, or `fallback`.
  [[nodiscard]] double arg(const std::string& key,
                           double fallback = 0.0) const;
};

/// Parse a JSONL trace file; throws std::runtime_error on unreadable files
/// or malformed lines.
std::vector<TraceEvent> read_trace_jsonl(const std::string& path);
/// Parse from memory (one event per line).
std::vector<TraceEvent> parse_trace_jsonl(const std::string& text);

/// Structural validation: timestamps non-negative and non-decreasing in
/// file order, begin/end spans balanced per track with matching names.
/// Returns "" when valid, else a description of the first violation.
std::string validate_trace(const std::vector<TraceEvent>& events);

}  // namespace lobster::util

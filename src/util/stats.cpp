#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace lobster::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& o) {
  if (o.n_ == 0) return;
  if (n_ == 0) {
    *this = o;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(o.n_);
  const double delta = o.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += o.m2_ + delta * delta * na * nb / total;
  n_ += o.n_;
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
}

double RunningStats::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

std::string RunningStats::summary() const {
  char buf[160];
  std::snprintf(buf, sizeof buf, "n=%llu mean=%.4g sd=%.4g [%.4g, %.4g]",
                static_cast<unsigned long long>(n_), mean(), stddev(), min(),
                max());
  return buf;
}

Reservoir::Reservoir(std::size_t capacity, Rng rng)
    : capacity_(capacity), rng_(rng) {
  if (capacity_ == 0) throw std::invalid_argument("Reservoir: capacity == 0");
  data_.reserve(capacity_);
}

void Reservoir::add(double x) {
  ++seen_;
  if (data_.size() < capacity_) {
    data_.push_back(x);
    return;
  }
  const std::uint64_t j = static_cast<std::uint64_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(seen_) - 1));
  if (j < capacity_) data_[static_cast<std::size_t>(j)] = x;
}

double Reservoir::quantile(double q) const {
  if (data_.empty()) throw std::logic_error("Reservoir: empty");
  scratch_ = data_;
  std::sort(scratch_.begin(), scratch_.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(scratch_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, scratch_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return scratch_[lo] * (1.0 - frac) + scratch_[hi] * frac;
}

}  // namespace lobster::util

#include "util/trace.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace lobster::util {

namespace {

/// Shortest representation that round-trips a double exactly ("%.17g"),
/// so reconstruction from a trace reproduces segment times bit for bit and
/// trace files are byte-deterministic.
void append_number(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

/// Names and categories are identifiers/dotted paths by convention, but a
/// stray quote or backslash must not corrupt the JSON.
void append_escaped(std::string& out, const char* s) {
  for (; *s; ++s) {
    if (*s == '"' || *s == '\\') out += '\\';
    out += *s;
  }
}

void append_args_object(std::string& out, const std::vector<TraceArg>& args) {
  out += '{';
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i) out += ',';
    out += '"';
    append_escaped(out, args[i].key);
    out += "\":";
    append_number(out, args[i].value);
  }
  out += '}';
}

void write_file_or_throw(const std::string& path, const std::string& content) {
  if (path.empty()) return;  // in-memory sink
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) throw std::runtime_error("trace: cannot open '" + path + "'");
  const std::size_t n = std::fwrite(content.data(), 1, content.size(), f);
  const bool ok = n == content.size() && std::fclose(f) == 0;
  if (!ok) throw std::runtime_error("trace: short write to '" + path + "'");
}

}  // namespace

const char* to_string(TraceFormat f) {
  switch (f) {
    case TraceFormat::Jsonl: return "jsonl";
    case TraceFormat::Chrome: return "chrome";
  }
  return "?";
}

const char* trace_extension(TraceFormat f) {
  return f == TraceFormat::Chrome ? ".json" : ".jsonl";
}

TraceFormat parse_trace_format(const std::string& s) {
  if (s == "jsonl") return TraceFormat::Jsonl;
  if (s == "chrome") return TraceFormat::Chrome;
  throw std::invalid_argument("unknown trace format '" + s +
                              "' (expected jsonl or chrome)");
}

// ---------------------------------------------------------------------------
// JsonlTraceSink
// ---------------------------------------------------------------------------

JsonlTraceSink::JsonlTraceSink(std::string path) : path_(std::move(path)) {}

void JsonlTraceSink::begin(const char* cat, const char* name,
                           std::uint64_t track, double t) {
  buf_ += "{\"ev\":\"B\",\"t\":";
  append_number(buf_, t);
  buf_ += ",\"track\":";
  append_u64(buf_, track);
  buf_ += ",\"cat\":\"";
  append_escaped(buf_, cat);
  buf_ += "\",\"name\":\"";
  append_escaped(buf_, name);
  buf_ += "\"}\n";
}

void JsonlTraceSink::end(const char* cat, const char* name,
                         std::uint64_t track, double t,
                         const std::vector<TraceArg>& args) {
  buf_ += "{\"ev\":\"E\",\"t\":";
  append_number(buf_, t);
  buf_ += ",\"track\":";
  append_u64(buf_, track);
  buf_ += ",\"cat\":\"";
  append_escaped(buf_, cat);
  buf_ += "\",\"name\":\"";
  append_escaped(buf_, name);
  buf_ += '"';
  if (!args.empty()) {
    buf_ += ",\"args\":";
    append_args_object(buf_, args);
  }
  buf_ += "}\n";
}

void JsonlTraceSink::instant(const char* cat, const char* name,
                             std::uint64_t track, double t,
                             const std::vector<TraceArg>& args) {
  buf_ += "{\"ev\":\"i\",\"t\":";
  append_number(buf_, t);
  buf_ += ",\"track\":";
  append_u64(buf_, track);
  buf_ += ",\"cat\":\"";
  append_escaped(buf_, cat);
  buf_ += "\",\"name\":\"";
  append_escaped(buf_, name);
  buf_ += '"';
  if (!args.empty()) {
    buf_ += ",\"args\":";
    append_args_object(buf_, args);
  }
  buf_ += "}\n";
}

void JsonlTraceSink::counter(const char* name, double t, double value) {
  buf_ += "{\"ev\":\"C\",\"t\":";
  append_number(buf_, t);
  buf_ += ",\"track\":0,\"name\":\"";
  append_escaped(buf_, name);
  buf_ += "\",\"value\":";
  append_number(buf_, value);
  buf_ += "}\n";
}

void JsonlTraceSink::close() {
  if (closed_) return;
  closed_ = true;
  write_file_or_throw(path_, buf_);
}

// ---------------------------------------------------------------------------
// ChromeTraceSink
// ---------------------------------------------------------------------------

ChromeTraceSink::ChromeTraceSink(std::string path) : path_(std::move(path)) {
  buf_ = "{\"traceEvents\":[\n";
}

void ChromeTraceSink::event_prefix(char ph, const char* cat, const char* name,
                                   std::uint64_t track, double t) {
  if (!first_) buf_ += ",\n";
  first_ = false;
  buf_ += "{\"ph\":\"";
  buf_ += ph;
  buf_ += "\",\"ts\":";
  append_number(buf_, t * 1e6);  // Chrome trace timestamps are microseconds
  buf_ += ",\"pid\":0,\"tid\":";
  append_u64(buf_, track);
  buf_ += ",\"cat\":\"";
  append_escaped(buf_, cat);
  buf_ += "\",\"name\":\"";
  append_escaped(buf_, name);
  buf_ += '"';
}

void ChromeTraceSink::begin(const char* cat, const char* name,
                            std::uint64_t track, double t) {
  event_prefix('B', cat, name, track, t);
  buf_ += '}';
}

void ChromeTraceSink::end(const char* cat, const char* name,
                          std::uint64_t track, double t,
                          const std::vector<TraceArg>& args) {
  event_prefix('E', cat, name, track, t);
  if (!args.empty()) {
    buf_ += ",\"args\":";
    append_args_object(buf_, args);
  }
  buf_ += '}';
}

void ChromeTraceSink::instant(const char* cat, const char* name,
                              std::uint64_t track, double t,
                              const std::vector<TraceArg>& args) {
  event_prefix('i', cat, name, track, t);
  buf_ += ",\"s\":\"t\"";  // thread-scoped instant
  if (!args.empty()) {
    buf_ += ",\"args\":";
    append_args_object(buf_, args);
  }
  buf_ += '}';
}

void ChromeTraceSink::counter(const char* name, double t, double value) {
  event_prefix('C', "counter", name, 0, t);
  buf_ += ",\"args\":{\"value\":";
  append_number(buf_, value);
  buf_ += "}}";
}

void ChromeTraceSink::close() {
  if (closed_) return;
  closed_ = true;
  buf_ += "\n]}\n";
  write_file_or_throw(path_, buf_);
}

std::unique_ptr<TraceSink> make_trace_sink(TraceFormat format,
                                           std::string path) {
  if (format == TraceFormat::Chrome)
    return std::make_unique<ChromeTraceSink>(std::move(path));
  return std::make_unique<JsonlTraceSink>(std::move(path));
}

// ---------------------------------------------------------------------------
// CounterRegistry
// ---------------------------------------------------------------------------

Counter& CounterRegistry::counter(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& CounterRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

std::vector<CounterRegistry::Sample> CounterRegistry::snapshot() const {
  std::lock_guard lock(mutex_);
  std::vector<Sample> out;
  out.reserve(counters_.size() + gauges_.size());
  // Both maps are name-ordered; a two-way merge keeps the combined view
  // sorted without re-sorting.
  auto c = counters_.begin();
  auto g = gauges_.begin();
  while (c != counters_.end() || g != gauges_.end()) {
    const bool take_counter =
        g == gauges_.end() ||
        (c != counters_.end() && c->first <= g->first);
    if (take_counter) {
      out.push_back({c->first, static_cast<double>(c->second->value()), false});
      ++c;
    } else {
      out.push_back({g->first, g->second->value(), true});
      ++g;
    }
  }
  return out;
}

std::vector<CounterRegistry::Sample> CounterRegistry::snapshot_delta(
    const std::vector<Sample>& before, const std::vector<Sample>& after) {
  // Both inputs are name-ordered (snapshot() guarantees it), so a merge
  // walk pairs them up in one pass.
  std::vector<Sample> out;
  out.reserve(after.size());
  std::size_t b = 0;
  for (const Sample& a : after) {
    while (b < before.size() && before[b].name < a.name) ++b;
    const double prev =
        (b < before.size() && before[b].name == a.name) ? before[b].value : 0.0;
    out.push_back({a.name, a.value - prev, a.is_gauge});
  }
  return out;
}

double EwmaRate::update(double now, double total) {
  if (!primed_) {
    primed_ = true;
    last_t_ = now;
    last_total_ = total;
    return rate_;
  }
  const double dt = now - last_t_;
  if (!(dt > 0.0)) return rate_;  // same-instant resample: keep the level
  const double inst = (total - last_total_) / dt;
  const double alpha = 1.0 - std::exp(-dt / tau_);
  rate_ += alpha * (inst - rate_);
  last_t_ = now;
  last_total_ = total;
  return rate_;
}

// ---------------------------------------------------------------------------
// Trace reading
// ---------------------------------------------------------------------------

double TraceEvent::arg(const std::string& key, double fallback) const {
  for (const auto& [k, v] : args)
    if (k == key) return v;
  return fallback;
}

namespace {

/// Minimal scanner over one JSONL event line.  The writer above emits flat
/// objects with string or number values plus one optional flat "args"
/// object; this parser accepts exactly that shape.
class LineParser {
 public:
  LineParser(const std::string& line, std::size_t lineno)
      : s_(line), lineno_(lineno) {}

  TraceEvent parse() {
    TraceEvent ev;
    expect('{');
    bool first = true;
    while (true) {
      skip_ws();
      if (peek() == '}') {
        ++pos_;
        break;
      }
      if (!first) expect(',');
      first = false;
      const std::string key = parse_string();
      expect(':');
      if (key == "ev") {
        const std::string v = parse_string();
        if (v.size() != 1) fail("bad ev value");
        ev.phase = v[0];
      } else if (key == "t") {
        ev.t = parse_number();
      } else if (key == "track") {
        ev.track = static_cast<std::uint64_t>(parse_number());
      } else if (key == "cat") {
        ev.cat = parse_string();
      } else if (key == "name") {
        ev.name = parse_string();
      } else if (key == "value") {
        ev.value = parse_number();
      } else if (key == "args") {
        parse_args(ev);
      } else {
        skip_value();
      }
    }
    return ev;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error("trace: line " + std::to_string(lineno_) + ": " +
                             what);
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }
  void expect(char c) {
    skip_ws();
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }
  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\' && pos_ + 1 < s_.size()) ++pos_;
      out += s_[pos_++];
    }
    if (pos_ >= s_.size()) fail("unterminated string");
    ++pos_;  // closing quote
    return out;
  }
  double parse_number() {
    skip_ws();
    const char* start = s_.c_str() + pos_;
    char* end = nullptr;
    const double v = std::strtod(start, &end);
    if (end == start) fail("expected a number");
    pos_ += static_cast<std::size_t>(end - start);
    return v;
  }
  void parse_args(TraceEvent& ev) {
    expect('{');
    bool first = true;
    while (true) {
      skip_ws();
      if (peek() == '}') {
        ++pos_;
        return;
      }
      if (!first) expect(',');
      first = false;
      const std::string key = parse_string();
      expect(':');
      ev.args.emplace_back(key, parse_number());
    }
  }
  void skip_value() {
    skip_ws();
    if (peek() == '"') {
      parse_string();
    } else {
      parse_number();
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
  std::size_t lineno_;
};

}  // namespace

std::vector<TraceEvent> parse_trace_jsonl(const std::string& text) {
  std::vector<TraceEvent> out;
  std::size_t begin = 0;
  std::size_t lineno = 0;
  while (begin < text.size()) {
    std::size_t end = text.find('\n', begin);
    if (end == std::string::npos) end = text.size();
    ++lineno;
    if (end > begin) {
      const std::string line = text.substr(begin, end - begin);
      out.push_back(LineParser(line, lineno).parse());
    }
    begin = end + 1;
  }
  return out;
}

std::vector<TraceEvent> read_trace_jsonl(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) throw std::runtime_error("trace: cannot read '" + path + "'");
  std::string text;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  return parse_trace_jsonl(text);
}

std::string validate_trace(const std::vector<TraceEvent>& events) {
  // Every message names the offending span, its track and its timestamp so
  // a failing compare/advisor run can be debugged from the error alone,
  // without opening the JSONL.
  const auto describe = [](const TraceEvent& ev) {
    return "span '" + ev.name + "' on track " + std::to_string(ev.track) +
           " at t=" + std::to_string(ev.t);
  };
  double last_t = 0.0;
  std::map<std::uint64_t, std::vector<const TraceEvent*>> open;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& ev = events[i];
    const std::string where = "event " + std::to_string(i + 1);
    if (!(ev.t >= 0.0))
      return where + ": negative timestamp (" + describe(ev) + ")";
    if (ev.t < last_t)
      return where + ": timestamp " + std::to_string(ev.t) +
             " goes backwards (previous " + std::to_string(last_t) + ", " +
             describe(ev) + ")";
    last_t = ev.t;
    if (ev.phase == 'B') {
      open[ev.track].push_back(&ev);
    } else if (ev.phase == 'E') {
      auto& stack = open[ev.track];
      if (stack.empty())
        return where + ": end of '" + ev.name + "' with no open span on track " +
               std::to_string(ev.track) + " at t=" + std::to_string(ev.t);
      if (stack.back()->name != ev.name)
        return where + ": end of '" + ev.name + "' at t=" +
               std::to_string(ev.t) + " but innermost open span on track " +
               std::to_string(ev.track) + " is '" + stack.back()->name +
               "' (opened at t=" + std::to_string(stack.back()->t) + ")";
      stack.pop_back();
    } else if (ev.phase != 'i' && ev.phase != 'C') {
      return where + ": unknown phase '" + std::string(1, ev.phase) + "' (" +
             describe(ev) + ")";
    }
  }
  for (const auto& [track, stack] : open) {
    if (!stack.empty())
      return "track " + std::to_string(track) + ": span '" +
             stack.back()->name + "' opened at t=" +
             std::to_string(stack.back()->t) + " never ended";
  }
  return "";
}

}  // namespace lobster::util

// stats.hpp — streaming statistics accumulators (Welford mean/variance,
// min/max, reservoir of samples for percentiles) used by the monitoring
// subsystem and the benches.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace lobster::util {

/// Streaming mean / variance / extrema via Welford's algorithm.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double sum() const { return mean_ * static_cast<double>(n_); }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;  ///< population variance
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }

  [[nodiscard]] std::string summary() const;  ///< "n=... mean=... sd=... [min, max]"

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Bounded reservoir sample supporting approximate percentiles over an
/// unbounded stream (Vitter's algorithm R).  Deterministic given its Rng.
class Reservoir {
 public:
  explicit Reservoir(std::size_t capacity, Rng rng = Rng(42));

  void add(double x);
  [[nodiscard]] std::uint64_t seen() const { return seen_; }
  std::size_t size() const { return data_.size(); }
  /// Approximate q-quantile (q in [0,1]) of the values seen so far.
  double quantile(double q) const;

 private:
  std::size_t capacity_;
  Rng rng_;
  std::uint64_t seen_ = 0;
  std::vector<double> data_;
  mutable std::vector<double> scratch_;
};

}  // namespace lobster::util

#include "util/thread_pool.hpp"

namespace lobster::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i)
    threads_.emplace_back([this] { run(); });
}

ThreadPool::~ThreadPool() { shutdown(); }

bool ThreadPool::submit(std::function<void()> task) {
  if (stopping_.load(std::memory_order_acquire)) return false;
  in_flight_.fetch_add(1, std::memory_order_acq_rel);
  if (!queue_.send(std::move(task))) {
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    return false;
  }
  return true;
}

void ThreadPool::wait() {
  std::unique_lock lock(idle_mutex_);
  idle_cv_.wait(lock, [&] {
    return in_flight_.load(std::memory_order_acquire) == 0;
  });
}

void ThreadPool::shutdown() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) {
    return;  // already shut down
  }
  queue_.close();
  for (auto& t : threads_)
    if (t.joinable()) t.join();
}

void ThreadPool::run() {
  while (auto task = queue_.receive()) {
    (*task)();
    if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard lock(idle_mutex_);
      idle_cv_.notify_all();
    }
  }
}

}  // namespace lobster::util

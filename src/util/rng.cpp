#include "util/rng.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace lobster::util {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t hash_name(std::string_view name) {
  // FNV-1a, then one SplitMix64 round for avalanche.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return splitmix64(h);
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Rng Rng::stream(std::string_view name) const {
  std::uint64_t mix = s_[0] ^ rotl(s_[1], 13) ^ hash_name(name);
  return Rng(mix);
}

Rng Rng::stream(std::string_view name, std::uint64_t index) const {
  std::uint64_t mix = s_[0] ^ rotl(s_[1], 13) ^ hash_name(name);
  std::uint64_t sm = mix + 0x9e3779b97f4a7c15ULL * (index + 1);
  return Rng(splitmix64(sm));
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53-bit mantissa in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Lemire's unbiased bounded generation.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * span;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < span) {
    const std::uint64_t t = -span % span;
    while (l < t) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * span;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return lo + static_cast<std::int64_t>(m >> 64);
}

double Rng::normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  has_spare_ = true;
  return u * factor;
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::truncated_normal(double mean, double stddev, double lo) {
  for (int i = 0; i < 1000; ++i) {
    const double x = normal(mean, stddev);
    if (x >= lo) return x;
  }
  return lo;  // pathological parameters; clamp rather than loop forever
}

double Rng::exponential(double mean) {
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::pareto(double alpha, double xm) {
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return xm / std::pow(u, 1.0 / alpha);
}

double Rng::weibull(double k, double lambda) {
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return lambda * std::pow(-std::log(u), 1.0 / k);
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

bool Rng::chance(double p) { return uniform() < p; }

std::int64_t Rng::poisson(double mean) {
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    const double limit = std::exp(-mean);
    double prod = uniform();
    std::int64_t n = 0;
    while (prod > limit) {
      prod *= uniform();
      ++n;
    }
    return n;
  }
  // Normal approximation with continuity correction for large means.
  const double x = normal(mean, std::sqrt(mean));
  return std::max<std::int64_t>(0, static_cast<std::int64_t>(std::lround(x)));
}

std::int64_t Rng::zipf(std::int64_t n, double s) {
  if (n <= 0) throw std::invalid_argument("zipf: n must be positive");
  if (n != zipf_n_ || s != zipf_s_) {
    zipf_cdf_.resize(static_cast<std::size_t>(n));
    double sum = 0.0;
    for (std::int64_t k = 1; k <= n; ++k) {
      sum += 1.0 / std::pow(static_cast<double>(k), s);
      zipf_cdf_[static_cast<std::size_t>(k - 1)] = sum;
    }
    for (auto& v : zipf_cdf_) v /= sum;
    zipf_n_ = n;
    zipf_s_ = s;
  }
  const double u = uniform();
  const auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
  return 1 + static_cast<std::int64_t>(it - zipf_cdf_.begin());
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (total <= 0.0)
    throw std::invalid_argument("weighted_index: total weight must be > 0");
  double u = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u <= 0.0) return i;
  }
  return weights.size() - 1;
}

EmpiricalDistribution::EmpiricalDistribution(std::vector<double> samples)
    : sorted_(std::move(samples)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalDistribution::min() const {
  return sorted_.empty() ? 0.0 : sorted_.front();
}

double EmpiricalDistribution::max() const {
  return sorted_.empty() ? 0.0 : sorted_.back();
}

double EmpiricalDistribution::mean() const {
  if (sorted_.empty()) return 0.0;
  return std::accumulate(sorted_.begin(), sorted_.end(), 0.0) /
         static_cast<double>(sorted_.size());
}

double EmpiricalDistribution::quantile(double q) const {
  if (sorted_.empty()) throw std::logic_error("quantile of empty distribution");
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

double EmpiricalDistribution::sample(Rng& rng) const {
  return quantile(rng.uniform());
}

double EmpiricalDistribution::cdf(double x) const {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

}  // namespace lobster::util

// log.hpp — minimal thread-safe leveled logger.  Components log through a
// shared sink; benches set the level to Warn so figure output stays clean.
#pragma once

#include <cstdarg>
#include <string>

namespace lobster::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global log threshold (default Warn: libraries should be quiet by default).
void set_log_level(LogLevel level);
LogLevel log_level();

/// printf-style logging; `component` is a short tag like "wq.master".
void logf(LogLevel level, const char* component, const char* fmt, ...)
    __attribute__((format(printf, 3, 4)));

#define LOBSTER_LOG_DEBUG(component, ...) \
  ::lobster::util::logf(::lobster::util::LogLevel::Debug, component, __VA_ARGS__)
#define LOBSTER_LOG_INFO(component, ...) \
  ::lobster::util::logf(::lobster::util::LogLevel::Info, component, __VA_ARGS__)
#define LOBSTER_LOG_WARN(component, ...) \
  ::lobster::util::logf(::lobster::util::LogLevel::Warn, component, __VA_ARGS__)
#define LOBSTER_LOG_ERROR(component, ...) \
  ::lobster::util::logf(::lobster::util::LogLevel::Error, component, __VA_ARGS__)

}  // namespace lobster::util

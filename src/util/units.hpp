// units.hpp — lightweight unit helpers used throughout the Lobster
// reproduction.  Simulation time is a double in *seconds*; data volumes are
// doubles in *bytes*.  These helpers make call sites read like the paper
// ("per-task overhead 20 minutes", "10 Gbit/s campus uplink") instead of
// bare magic numbers.
#pragma once

#include <cstdint>
#include <string>

namespace lobster::util {

// ---- time (seconds) -------------------------------------------------------

constexpr double seconds(double s) { return s; }
constexpr double minutes(double m) { return m * 60.0; }
constexpr double hours(double h) { return h * 3600.0; }
constexpr double days(double d) { return d * 86400.0; }

/// Render a duration in seconds as a compact human-readable string,
/// e.g. "2d3h", "1h04m", "12m30s", "45.2s".
std::string format_duration(double seconds);

// ---- data volume (bytes) --------------------------------------------------

constexpr double bytes(double b) { return b; }
constexpr double kib(double k) { return k * 1024.0; }
constexpr double mib(double m) { return m * 1024.0 * 1024.0; }
constexpr double gib(double g) { return g * 1024.0 * 1024.0 * 1024.0; }
constexpr double tib(double t) { return t * 1024.0 * 1024.0 * 1024.0 * 1024.0; }

// Decimal variants, used where the paper speaks in MB/GB.
constexpr double kb(double k) { return k * 1e3; }
constexpr double mb(double m) { return m * 1e6; }
constexpr double gb(double g) { return g * 1e9; }
constexpr double tb(double t) { return t * 1e12; }

/// Render a byte count as e.g. "3.4 GB", "120 MB", "512 B".
std::string format_bytes(double bytes);

// ---- bandwidth (bytes / second) -------------------------------------------

constexpr double mbit_per_s(double m) { return m * 1e6 / 8.0; }
constexpr double gbit_per_s(double g) { return g * 1e9 / 8.0; }
constexpr double mb_per_s(double m) { return m * 1e6; }

/// Render a rate in bytes/s as e.g. "1.25 GB/s".
std::string format_rate(double bytes_per_second);

}  // namespace lobster::util

// thread_annotations.hpp — GUARDED_BY-style annotations for mutex-protected
// members.
//
// Every class that owns a std::mutex / std::shared_mutex must say, member by
// member, which lock guards what (or why nothing does): the concurrency bugs
// that make 10k-core campaigns undiagnosable are exactly the ones where a
// member quietly migrated out from under its lock.  `lobster_lint` enforces
// the discipline (rule `guarded`): in a mutex-holding class, every data
// member that is not itself a synchronisation primitive or an atomic must
// carry one of these annotations.
//
//   std::uint64_t hits_ LOBSTER_GUARDED_BY(mutex_) = 0;
//   Fetcher upstream_ LOBSTER_NOT_GUARDED(immutable after construction);
//
// Under clang with -Wthread-safety (and LOBSTER_THREAD_SAFETY defined) the
// GUARDED_BY forms expand to the real thread-safety-analysis attributes; the
// default build treats them as documentation checked by the linter only, so
// gcc builds are unaffected.
#pragma once

#if defined(LOBSTER_THREAD_SAFETY) && defined(__clang__)
#define LOBSTER_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define LOBSTER_THREAD_ANNOTATION_(x)
#endif

/// Member may only be read/written with `mutex` held.
#define LOBSTER_GUARDED_BY(mutex) LOBSTER_THREAD_ANNOTATION_(guarded_by(mutex))

/// Pointer member: the pointee (not the pointer) is guarded by `mutex`.
#define LOBSTER_PT_GUARDED_BY(mutex) \
  LOBSTER_THREAD_ANNOTATION_(pt_guarded_by(mutex))

/// Audited opt-out: the member needs no lock, and the argument says why
/// (immutable after construction, internally synchronized, confined to one
/// thread, ...).  Expands to nothing; the reason is for the reader and the
/// linter.
#define LOBSTER_NOT_GUARDED(...)

/// Lock-order declarations: this mutex is canonically acquired after (or
/// before) the named mutexes.  Cross-class references use the qualified
/// spelling (`util::Channel::mutex_`).  These expand to nothing everywhere:
/// clang parses acquired_after/acquired_before but documents them as
/// unimplemented, and a qualified member reference is not a valid attribute
/// argument anyway — enforcement lives in lobster_lint's `lockorder` rule,
/// which checks every observed cross-class acquisition edge against the
/// hierarchy declared here and reports cycles.
#define LOBSTER_ACQUIRED_AFTER(...)
#define LOBSTER_ACQUIRED_BEFORE(...)

/// Caller must hold `mutex` on entry.  Under clang this is the real
/// REQUIRES attribute; lobster_lint additionally seeds the annotated
/// method's lexical lock-set with it (rule `guardeduse`).
#define LOBSTER_REQUIRES(...) \
  LOBSTER_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Caller must NOT hold `mutex` on entry (deadlock documentation).
#define LOBSTER_EXCLUDES(...) \
  LOBSTER_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Escape hatch for functions whose locking clang's analysis cannot follow:
/// libc++ annotates std::mutex/lock_guard/scoped_lock but not
/// std::unique_lock, and manual unlock()/lock() cycles around fetches or
/// condition-variable waits are beyond the attribute system.  lobster_lint
/// still checks these functions (its tracker is lexical, not attribute
/// based), so the escape loses no coverage in the default build.
#define LOBSTER_NO_THREAD_SAFETY_ANALYSIS \
  LOBSTER_THREAD_ANNOTATION_(no_thread_safety_analysis)

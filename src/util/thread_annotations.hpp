// thread_annotations.hpp — GUARDED_BY-style annotations for mutex-protected
// members.
//
// Every class that owns a std::mutex / std::shared_mutex must say, member by
// member, which lock guards what (or why nothing does): the concurrency bugs
// that make 10k-core campaigns undiagnosable are exactly the ones where a
// member quietly migrated out from under its lock.  `lobster_lint` enforces
// the discipline (rule `guarded`): in a mutex-holding class, every data
// member that is not itself a synchronisation primitive or an atomic must
// carry one of these annotations.
//
//   std::uint64_t hits_ LOBSTER_GUARDED_BY(mutex_) = 0;
//   Fetcher upstream_ LOBSTER_NOT_GUARDED(immutable after construction);
//
// Under clang with -Wthread-safety (and LOBSTER_THREAD_SAFETY defined) the
// GUARDED_BY forms expand to the real thread-safety-analysis attributes; the
// default build treats them as documentation checked by the linter only, so
// gcc builds are unaffected.
#pragma once

#if defined(LOBSTER_THREAD_SAFETY) && defined(__clang__)
#define LOBSTER_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define LOBSTER_THREAD_ANNOTATION_(x)
#endif

/// Member may only be read/written with `mutex` held.
#define LOBSTER_GUARDED_BY(mutex) LOBSTER_THREAD_ANNOTATION_(guarded_by(mutex))

/// Pointer member: the pointee (not the pointer) is guarded by `mutex`.
#define LOBSTER_PT_GUARDED_BY(mutex) \
  LOBSTER_THREAD_ANNOTATION_(pt_guarded_by(mutex))

/// Audited opt-out: the member needs no lock, and the argument says why
/// (immutable after construction, internally synchronized, confined to one
/// thread, ...).  Expands to nothing; the reason is for the reader and the
/// linter.
#define LOBSTER_NOT_GUARDED(...)

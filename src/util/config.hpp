// config.hpp — a small INI-style configuration parser.  Lobster is driven by
// a user-supplied configuration file describing input datasets, task sizing,
// merge mode etc.; this parser supports the subset we need:
//
//   [section]
//   key = value            # trailing comments with '#' or ';'
//   list = a, b, c
//
// Values are stored as strings and converted on access; durations accept
// suffixes s/m/h/d and sizes accept suffixes kB/MB/GB/KiB/MiB/GiB.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace lobster::util {

class Config {
 public:
  Config() = default;

  /// Parse from text; throws std::runtime_error with line info on syntax
  /// errors.
  static Config parse(const std::string& text);
  /// Parse from a file on disk.
  static Config load(const std::string& path);

  void set(const std::string& section, const std::string& key,
           const std::string& value);

  bool has(const std::string& section, const std::string& key) const;
  std::vector<std::string> sections() const;
  std::vector<std::string> keys(const std::string& section) const;

  std::optional<std::string> get(const std::string& section,
                                 const std::string& key) const;
  std::string get_string(const std::string& section, const std::string& key,
                         const std::string& fallback = "") const;
  std::int64_t get_int(const std::string& section, const std::string& key,
                       std::int64_t fallback = 0) const;
  double get_double(const std::string& section, const std::string& key,
                    double fallback = 0.0) const;
  bool get_bool(const std::string& section, const std::string& key,
                bool fallback = false) const;
  /// Duration in seconds; accepts plain numbers (seconds) or suffixes
  /// "s", "m", "h", "d" (e.g. "20m", "1.5h").
  double get_duration(const std::string& section, const std::string& key,
                      double fallback_seconds = 0.0) const;
  /// Size in bytes; accepts suffixes kB/MB/GB/TB (decimal) and
  /// KiB/MiB/GiB/TiB (binary), case-insensitive.
  double get_size(const std::string& section, const std::string& key,
                  double fallback_bytes = 0.0) const;
  /// Comma-separated list, trimmed.
  std::vector<std::string> get_list(const std::string& section,
                                    const std::string& key) const;

  /// Serialise back to INI text (sections and keys sorted).
  std::string to_string() const;

  /// Parse helpers exposed for tests.
  static double parse_duration(const std::string& text);
  static double parse_size(const std::string& text);

 private:
  std::map<std::string, std::map<std::string, std::string>> data_;
};

}  // namespace lobster::util

// hdfs.hpp — a Hadoop-style storage cluster: block-based replicated object
// store plus a Map-Reduce-lite execution runtime.
//
// In the production Lobster deployment, Chirp fronts a backend Hadoop
// cluster used for bulk storage (paper §4.2), and one of the three merging
// strategies runs entirely inside Hadoop as a Map-Reduce job (paper §4.4):
// the Map phase groups small output files by name into target merged files,
// and each reducer concatenates its group and writes the merged file back
// into HDFS.  Both pieces are implemented here for real (threads + in-memory
// blocks), with determinism guaranteed by sorted shuffles.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/thread_annotations.hpp"
#include "util/trace.hpp"

namespace lobster::hdfs {

struct HdfsError : std::runtime_error {
  explicit HdfsError(const std::string& what) : std::runtime_error(what) {}
};

struct FileStatus {
  std::string path;
  std::uint64_t size = 0;
  std::size_t num_blocks = 0;
};

/// The storage cluster: a namenode (metadata) plus datanodes (block
/// payloads), with configurable block size and replication factor.
class Cluster {
 public:
  Cluster(std::size_t num_datanodes, std::size_t replication,
          std::size_t block_size);

  // ---- file operations (thread safe) --------------------------------------

  /// Create or replace a file.
  void put(const std::string& path, const std::string& content);
  /// Read a whole file; throws HdfsError when missing or when every replica
  /// of some block is on dead datanodes (data loss).
  std::string get(const std::string& path) const;
  bool exists(const std::string& path) const;
  void remove(const std::string& path);
  FileStatus stat(const std::string& path) const;
  std::vector<FileStatus> list(const std::string& prefix) const;

  // ---- cluster management --------------------------------------------------

  /// Take a datanode offline, dropping its block replicas.
  void kill_datanode(std::size_t index);
  /// Copy under-replicated blocks onto other live datanodes (what the real
  /// namenode does in the background).
  void rereplicate();
  [[nodiscard]] std::size_t num_datanodes() const;
  std::size_t live_datanodes() const;
  std::size_t replication() const { return replication_; }
  std::size_t block_size() const { return block_size_; }
  /// Count of blocks with fewer live replicas than the replication factor.
  std::size_t under_replicated_blocks() const;
  [[nodiscard]] double total_bytes() const;

  /// Attach the unified counter plane (hdfs.*).  Optional.
  void bind_counters(util::CounterRegistry& registry);

 private:
  struct Block {
    std::uint64_t id;
    std::vector<std::size_t> replicas;  // datanode indices
    std::size_t size;
  };
  struct DataNode {
    bool alive = true;
    std::map<std::uint64_t, std::string> blocks;
  };

  std::vector<std::size_t> place_replicas_locked(std::uint64_t block_id) const
      LOBSTER_REQUIRES(mutex_);
  void remove_locked(const std::string& path) LOBSTER_REQUIRES(mutex_);

  mutable std::mutex mutex_;
  std::size_t replication_ LOBSTER_NOT_GUARDED(immutable after construction);
  std::size_t block_size_ LOBSTER_NOT_GUARDED(immutable after construction);
  std::uint64_t next_block_ LOBSTER_GUARDED_BY(mutex_) = 1;
  std::map<std::string, std::vector<Block>> namespace_
      LOBSTER_GUARDED_BY(mutex_);
  std::vector<DataNode> datanodes_ LOBSTER_GUARDED_BY(mutex_);
  util::Counter* ctr_puts_ LOBSTER_NOT_GUARDED(target is atomic) = nullptr;
  util::Counter* ctr_gets_ LOBSTER_NOT_GUARDED(target is atomic) = nullptr;
  util::Gauge* ctr_bytes_written_ LOBSTER_NOT_GUARDED(target is atomic) =
      nullptr;
  util::Gauge* ctr_bytes_read_ LOBSTER_NOT_GUARDED(target is atomic) = nullptr;
};

// ---- Map-Reduce-lite -------------------------------------------------------

struct KeyValue {
  std::string key;
  std::string value;
};

/// Map: (input path, content) -> intermediate key/value pairs.
using MapFn =
    std::function<std::vector<KeyValue>(const std::string& path,
                                        const std::string& content)>;
/// Reduce: (key, all values for the key, sorted) -> output file content.
using ReduceFn = std::function<std::string(
    const std::string& key, const std::vector<std::string>& values)>;

struct JobStats {
  std::size_t map_tasks = 0;
  std::size_t reduce_tasks = 0;
  std::size_t intermediate_pairs = 0;
  std::vector<std::string> outputs;  // paths written, sorted
};

/// Run a Map-Reduce job over files already stored in the cluster; each
/// reducer's result is written to `output_prefix + key`.  Deterministic:
/// the shuffle sorts keys and values.  Map and reduce tasks execute on
/// `num_threads` real threads.
JobStats run_mapreduce(Cluster& cluster, const std::vector<std::string>& inputs,
                       const MapFn& map_fn, const ReduceFn& reduce_fn,
                       const std::string& output_prefix,
                       std::size_t num_threads = 4);

}  // namespace lobster::hdfs

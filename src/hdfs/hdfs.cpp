#include "hdfs/hdfs.hpp"

#include <algorithm>

#include "util/thread_pool.hpp"

namespace lobster::hdfs {

Cluster::Cluster(std::size_t num_datanodes, std::size_t replication,
                 std::size_t block_size)
    : replication_(replication), block_size_(block_size) {
  if (num_datanodes == 0) throw HdfsError("hdfs: need at least one datanode");
  if (replication == 0 || replication > num_datanodes)
    throw HdfsError("hdfs: replication must be in [1, num_datanodes]");
  if (block_size == 0) throw HdfsError("hdfs: block size must be positive");
  datanodes_.resize(num_datanodes);
}

std::vector<std::size_t> Cluster::place_replicas_locked(
    std::uint64_t block_id) const {
  // Deterministic placement: start at block_id mod N, take the next
  // `replication_` live datanodes.
  std::vector<std::size_t> out;
  const std::size_t n = datanodes_.size();
  std::size_t start = static_cast<std::size_t>(block_id % n);
  for (std::size_t step = 0; step < n && out.size() < replication_; ++step) {
    const std::size_t idx = (start + step) % n;
    if (datanodes_[idx].alive) out.push_back(idx);
  }
  if (out.empty()) throw HdfsError("hdfs: no live datanodes");
  return out;
}

void Cluster::bind_counters(util::CounterRegistry& registry) {
  ctr_puts_ = &registry.counter("hdfs.cluster.puts");
  ctr_gets_ = &registry.counter("hdfs.cluster.gets");
  ctr_bytes_written_ = &registry.gauge("hdfs.cluster.bytes_written");
  ctr_bytes_read_ = &registry.gauge("hdfs.cluster.bytes_read");
}

void Cluster::put(const std::string& path, const std::string& content) {
  if (path.empty()) throw HdfsError("hdfs: empty path");
  util::bump(ctr_puts_);
  util::bump(ctr_bytes_written_, static_cast<double>(content.size()));
  std::lock_guard lock(mutex_);
  if (namespace_.count(path)) remove_locked(path);
  std::vector<Block> blocks;
  for (std::size_t off = 0; off == 0 || off < content.size();
       off += block_size_) {
    const std::size_t len = std::min(block_size_, content.size() - off);
    Block b;
    b.id = next_block_++;
    b.size = len;
    b.replicas = place_replicas_locked(b.id);
    const std::string payload = content.substr(off, len);
    for (std::size_t dn : b.replicas) datanodes_[dn].blocks[b.id] = payload;
    blocks.push_back(std::move(b));
    if (content.empty()) break;  // single empty block for empty files
  }
  namespace_[path] = std::move(blocks);
}

std::string Cluster::get(const std::string& path) const {
  std::lock_guard lock(mutex_);
  const auto it = namespace_.find(path);
  if (it == namespace_.end()) throw HdfsError("hdfs: no such file " + path);
  std::string out;
  for (const Block& b : it->second) {
    bool found = false;
    for (std::size_t dn : b.replicas) {
      if (!datanodes_[dn].alive) continue;
      const auto bit = datanodes_[dn].blocks.find(b.id);
      if (bit != datanodes_[dn].blocks.end()) {
        out += bit->second;
        found = true;
        break;
      }
    }
    if (!found)
      throw HdfsError("hdfs: block lost (all replicas dead) in " + path);
  }
  util::bump(ctr_gets_);
  util::bump(ctr_bytes_read_, static_cast<double>(out.size()));
  return out;
}

bool Cluster::exists(const std::string& path) const {
  std::lock_guard lock(mutex_);
  return namespace_.count(path) > 0;
}

void Cluster::remove_locked(const std::string& path) {
  const auto it = namespace_.find(path);
  if (it == namespace_.end()) throw HdfsError("hdfs: no such file " + path);
  for (const Block& b : it->second)
    for (std::size_t dn : b.replicas) datanodes_[dn].blocks.erase(b.id);
  namespace_.erase(it);
}

void Cluster::remove(const std::string& path) {
  std::lock_guard lock(mutex_);
  remove_locked(path);
}

FileStatus Cluster::stat(const std::string& path) const {
  std::lock_guard lock(mutex_);
  const auto it = namespace_.find(path);
  if (it == namespace_.end()) throw HdfsError("hdfs: no such file " + path);
  FileStatus st;
  st.path = path;
  st.num_blocks = it->second.size();
  for (const Block& b : it->second) st.size += b.size;
  return st;
}

std::vector<FileStatus> Cluster::list(const std::string& prefix) const {
  std::lock_guard lock(mutex_);
  std::vector<FileStatus> out;
  for (auto it = namespace_.lower_bound(prefix);
       it != namespace_.end() &&
       it->first.compare(0, prefix.size(), prefix) == 0;
       ++it) {
    FileStatus st;
    st.path = it->first;
    st.num_blocks = it->second.size();
    for (const Block& b : it->second) st.size += b.size;
    out.push_back(std::move(st));
  }
  return out;
}

void Cluster::kill_datanode(std::size_t index) {
  std::lock_guard lock(mutex_);
  if (index >= datanodes_.size()) throw HdfsError("hdfs: no such datanode");
  datanodes_[index].alive = false;
  datanodes_[index].blocks.clear();
}

void Cluster::rereplicate() {
  std::lock_guard lock(mutex_);
  for (auto& [path, blocks] : namespace_) {
    for (Block& b : blocks) {
      // Live replicas that still hold the payload.
      std::vector<std::size_t> live;
      for (std::size_t dn : b.replicas)
        if (datanodes_[dn].alive && datanodes_[dn].blocks.count(b.id))
          live.push_back(dn);
      if (live.empty()) continue;  // lost; nothing to copy from
      const std::string& payload = datanodes_[live.front()].blocks.at(b.id);
      // Add copies on other live nodes until we reach the factor.
      for (std::size_t idx = 0;
           idx < datanodes_.size() && live.size() < replication_; ++idx) {
        if (!datanodes_[idx].alive) continue;
        if (std::find(live.begin(), live.end(), idx) != live.end()) continue;
        datanodes_[idx].blocks[b.id] = payload;
        live.push_back(idx);
      }
      b.replicas = live;
    }
  }
}

std::size_t Cluster::num_datanodes() const {
  std::lock_guard lock(mutex_);
  return datanodes_.size();
}

std::size_t Cluster::live_datanodes() const {
  std::lock_guard lock(mutex_);
  std::size_t n = 0;
  for (const auto& dn : datanodes_) n += dn.alive;
  return n;
}

std::size_t Cluster::under_replicated_blocks() const {
  std::lock_guard lock(mutex_);
  std::size_t n = 0;
  for (const auto& [path, blocks] : namespace_) {
    for (const Block& b : blocks) {
      std::size_t live = 0;
      for (std::size_t dn : b.replicas)
        if (datanodes_[dn].alive && datanodes_[dn].blocks.count(b.id)) ++live;
      if (live < replication_) ++n;
    }
  }
  return n;
}

double Cluster::total_bytes() const {
  std::lock_guard lock(mutex_);
  double sum = 0.0;
  for (const auto& [path, blocks] : namespace_)
    for (const Block& b : blocks) sum += static_cast<double>(b.size);
  return sum;
}

JobStats run_mapreduce(Cluster& cluster, const std::vector<std::string>& inputs,
                       const MapFn& map_fn, const ReduceFn& reduce_fn,
                       const std::string& output_prefix,
                       std::size_t num_threads) {
  if (!map_fn || !reduce_fn) throw HdfsError("mapreduce: null function");
  JobStats stats;
  stats.map_tasks = inputs.size();

  // ---- map phase ----
  std::mutex shuffle_mutex;
  std::map<std::string, std::vector<std::string>> shuffle;
  std::exception_ptr first_error;
  {
    util::ThreadPool pool(num_threads);
    for (const auto& input : inputs) {
      pool.submit([&, input] {
        try {
          const std::string content = cluster.get(input);
          auto pairs = map_fn(input, content);
          std::lock_guard lock(shuffle_mutex);
          for (auto& kv : pairs) {
            shuffle[kv.key].push_back(std::move(kv.value));
            ++stats.intermediate_pairs;
          }
        } catch (...) {
          std::lock_guard lock(shuffle_mutex);
          if (!first_error) first_error = std::current_exception();
        }
      });
    }
    pool.wait();
  }
  if (first_error) std::rethrow_exception(first_error);

  // Sort values per key so reducers see a deterministic order regardless of
  // map-task completion order.
  for (auto& [key, values] : shuffle) std::sort(values.begin(), values.end());

  // ---- reduce phase ----
  stats.reduce_tasks = shuffle.size();
  {
    util::ThreadPool pool(num_threads);
    std::mutex out_mutex;
    for (const auto& [key, values] : shuffle) {
      pool.submit([&, key = key, values = values] {
        try {
          const std::string result = reduce_fn(key, values);
          const std::string out_path = output_prefix + key;
          cluster.put(out_path, result);
          std::lock_guard lock(out_mutex);
          stats.outputs.push_back(out_path);
        } catch (...) {
          std::lock_guard lock(out_mutex);
          if (!first_error) first_error = std::current_exception();
        }
      });
    }
    pool.wait();
  }
  if (first_error) std::rethrow_exception(first_error);
  std::sort(stats.outputs.begin(), stats.outputs.end());
  return stats;
}

}  // namespace lobster::hdfs

// repository.hpp — a CernVM-FS style read-only, content-addressed software
// repository.
//
// CVMFS distributes the (complex, multi-GB) HEP software stack as a catalog
// of content-addressed objects fetched over HTTP on demand (paper §4.3).
// The crucial properties Lobster relies on are reproduced here:
//   * read-only: objects never change, so caches never need invalidation —
//     this is what makes the "alien cache" concurrent population safe;
//   * content addressed: an object is identified by a digest of its content,
//     letting caches verify integrity;
//   * on-demand: a task touches only its working set, not the whole release.
//
// A synthetic release generator produces a catalog with a realistic size
// profile: the paper states a typical analysis job pulls ~1.5 GB per cache.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace lobster::cvmfs {

/// Content digest (content addressing).  Derived deterministically from the
/// object's path and size so integrity can be verified end-to-end.
struct Digest {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
  friend bool operator==(const Digest&, const Digest&) = default;
  std::string hex() const;
};

/// Compute the digest of an object's canonical content.
Digest digest_of(const std::string& path, double size_bytes);

/// One file in the repository catalog.
struct FileObject {
  std::string path;
  double size_bytes = 0.0;
  Digest digest;
};

/// The read-only repository: a catalog of path -> object.
class Repository {
 public:
  /// Add an object; the digest is computed from (path, size).
  /// Throws std::invalid_argument on duplicate path.
  void add(const std::string& path, double size_bytes);

  std::optional<FileObject> lookup(const std::string& path) const;
  bool has(const std::string& path) const { return catalog_.count(path) > 0; }
  [[nodiscard]] std::size_t num_files() const { return catalog_.size(); }
  [[nodiscard]] double total_bytes() const { return total_bytes_; }
  std::vector<FileObject> files() const;

 private:
  std::map<std::string, FileObject> catalog_;
  double total_bytes_ = 0.0;
};

/// Parameters of a synthetic software release.
struct ReleaseSpec {
  std::string name = "CMSSW_7_4_X";
  std::size_t num_files = 2000;
  /// Total release volume on the server.
  double total_bytes = 6.0e9;
  /// The working set a typical task actually touches (paper: ~1.5 GB).
  double working_set_bytes = 1.5e9;
  /// Zipf exponent of file popularity (shared libraries dominate).
  double popularity_exponent = 1.1;
};

/// A generated release: the repository plus the popularity model used to
/// draw per-task working sets.
class Release {
 public:
  Release(const ReleaseSpec& spec, util::Rng rng);

  const Repository& repository() const { return repo_; }
  const ReleaseSpec& spec() const { return spec_; }

  /// Draw the ordered list of files a task will access.  Tasks share most
  /// of their working set (the Zipf head), which is why a hot cache slashes
  /// setup cost: subsequent tasks find the popular files already cached.
  std::vector<FileObject> sample_working_set(util::Rng& rng) const;

 private:
  ReleaseSpec spec_;
  Repository repo_;
  std::vector<FileObject> by_rank_;   // popularity order
  std::vector<double> weights_;       // Zipf weights by rank
  double inclusion_scale_ = 1.0;      // calibrated once in the constructor
};

}  // namespace lobster::cvmfs

// squid.hpp — the HTTP proxy cache layer between worker nodes and the CVMFS
// repository (paper §4.3, Figure 5).
//
// Two implementations share the same semantics:
//
//  * SquidProxy — a real, thread-safe LRU object cache with an upstream
//    fetcher, usable as the Fetcher of a cvmfs::CacheGroup.  Used by the
//    wq:: runtime and the multithreaded tests.
//
//  * SquidSim — a DES cost model: limited concurrent connections, a shared
//    service link (proxy NIC/disk), and a slower upstream link to the
//    stratum server for misses.  Saturation of the service link is what
//    produces the Figure 5 knee ("one proxy cache can support approximately
//    1000 hot worker caches") and the cold-start overhead peak in the 20k
//    simulation run (Figure 11).
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>

#include "cvmfs/parrot_cache.hpp"
#include "cvmfs/repository.hpp"
#include "des/bandwidth.hpp"
#include "des/resource.hpp"
#include "des/simulation.hpp"
#include "des/task.hpp"
#include "util/thread_annotations.hpp"

namespace lobster::cvmfs {

/// Real in-process squid: LRU object cache with byte capacity.
class SquidProxy {
 public:
  /// `capacity_bytes` bounds the cache; `upstream` resolves misses (e.g. the
  /// repository itself, or another proxy tier).
  SquidProxy(double capacity_bytes, Fetcher upstream);

  /// Serve an object: cache hit or upstream fetch + insert (with LRU
  /// eviction).  Thread safe.
  Digest fetch(const FileObject& obj);

  /// Adapter so a SquidProxy can be plugged in wherever a Fetcher is needed.
  Fetcher as_fetcher();

  [[nodiscard]] std::uint64_t hits() const;
  [[nodiscard]] std::uint64_t misses() const;
  [[nodiscard]] double bytes_served() const;    ///< total volume delivered to clients
  [[nodiscard]] double bytes_upstream() const;  ///< volume pulled from upstream (misses)
  [[nodiscard]] double resident_bytes() const;
  [[nodiscard]] std::size_t resident_objects() const;

 private:
  void touch_locked(const std::string& path) LOBSTER_REQUIRES(mutex_);
  void evict_locked() LOBSTER_REQUIRES(mutex_);

  struct Entry {
    Digest digest;
    double bytes = 0.0;
    std::list<std::string>::iterator lru_it;
  };

  mutable std::mutex mutex_;
  double capacity_bytes_ LOBSTER_NOT_GUARDED(immutable after construction);
  Fetcher upstream_ LOBSTER_NOT_GUARDED(immutable after construction);
  std::unordered_map<std::string, Entry> cache_ LOBSTER_GUARDED_BY(mutex_);
  // front = most recent
  std::list<std::string> lru_ LOBSTER_GUARDED_BY(mutex_);
  double resident_bytes_ LOBSTER_GUARDED_BY(mutex_) = 0.0;
  std::uint64_t hits_ LOBSTER_GUARDED_BY(mutex_) = 0;
  std::uint64_t misses_ LOBSTER_GUARDED_BY(mutex_) = 0;
  double bytes_served_ LOBSTER_GUARDED_BY(mutex_) = 0.0;
  double bytes_upstream_ LOBSTER_GUARDED_BY(mutex_) = 0.0;
};

/// DES model of a squid proxy.
class SquidSim {
 public:
  struct Params {
    /// Concurrent connections the proxy accepts; excess requests queue.
    std::int64_t max_connections = 512;
    /// Aggregate service rate of the proxy (NIC + disk), bytes/s.
    double service_rate = 1.25e9;  // 10 Gbit/s
    /// Upstream (stratum) path for cache misses, bytes/s.
    double upstream_rate = 1.25e8;  // 1 Gbit/s
    /// Fixed per-request overhead (connection setup, catalog lookups).
    double request_latency = 0.05;
    /// Requests queued beyond this time out and fail (paper §6: "timeouts
    /// in connecting to the squid proxy cache" are the dominant failure at
    /// 20k scale).  <= 0 disables.
    double connect_timeout = 0.0;
    /// Overload thrash: the Figure 5 knee.  A proxy past its comfortable
    /// connection count stops being work-conserving — TCP retransmits,
    /// aborted-and-retried segments, and connection-table churn mean each
    /// object costs more than its size to deliver.  A request admitted
    /// while `in_use > thrash_knee` pays an inflated service volume of
    /// bytes * (1 + thrash * (in_use - knee) / knee), sampled at admission
    /// (deterministic — no RNG, no mid-flight re-rating).  The inflation is
    /// bounded by max_connections, so an overloaded proxy degrades instead
    /// of livelocking.  thrash_knee <= 0 or thrash <= 0 disables.
    double thrash = 0.0;
    std::int64_t thrash_knee = 0;
  };

  SquidSim(des::Simulation& sim, const Params& params);

  /// Fetch `bytes` of objects through the proxy.  `cached` says whether the
  /// proxy already holds them (the caller's cold/hot bookkeeping or a real
  /// path set decides).  Returns the time spent; throws TimeoutError when
  /// the connect_timeout is exceeded before a connection becomes available.
  struct TimeoutError : std::runtime_error {
    TimeoutError() : std::runtime_error("squid: connect timeout") {}
  };
  des::Task<double> fetch(double bytes, bool proxy_hit);

  /// Track proxy-side object cache by path: returns true if this path was
  /// already requested through this proxy (so the proxy has it).
  bool note_request(const std::string& path);

  des::Resource& connections() { return connections_; }
  des::BandwidthLink& service_link() { return service_link_; }
  des::BandwidthLink& upstream_link() { return upstream_link_; }
  [[nodiscard]] std::uint64_t timeouts() const { return timeouts_; }
  [[nodiscard]] std::uint64_t requests() const { return requests_; }

 private:
  des::Simulation& sim_;
  Params params_;
  des::Resource connections_;
  des::BandwidthLink service_link_;
  des::BandwidthLink upstream_link_;
  std::unordered_map<std::string, bool> seen_;
  std::uint64_t timeouts_ = 0;
  std::uint64_t requests_ = 0;
  // Unified counter plane (cvmfs.squid.*); all squids of a simulation share
  // the same named counters.
  util::Counter* ctr_requests_;
  util::Counter* ctr_hits_;
  util::Counter* ctr_misses_;
  util::Counter* ctr_timeouts_;
  util::Gauge* ctr_bytes_served_;
  util::Gauge* ctr_bytes_upstream_;
  util::Gauge* ctr_bytes_thrashed_;
};

}  // namespace lobster::cvmfs

#include "cvmfs/repository.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace lobster::cvmfs {

std::string Digest::hex() const {
  char buf[36];
  std::snprintf(buf, sizeof buf, "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return buf;
}

Digest digest_of(const std::string& path, double size_bytes) {
  // FNV-1a over the path, mixed with the size, finalized with SplitMix64.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : path) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  std::uint64_t s1 = h ^ static_cast<std::uint64_t>(size_bytes);
  std::uint64_t s2 = h + 0x9e3779b97f4a7c15ULL;
  Digest d;
  d.hi = util::splitmix64(s1);
  d.lo = util::splitmix64(s2);
  return d;
}

void Repository::add(const std::string& path, double size_bytes) {
  if (path.empty())
    throw std::invalid_argument("cvmfs: empty path");
  if (size_bytes < 0.0)
    throw std::invalid_argument("cvmfs: negative size");
  FileObject obj;
  obj.path = path;
  obj.size_bytes = size_bytes;
  obj.digest = digest_of(path, size_bytes);
  const auto [it, inserted] = catalog_.emplace(path, std::move(obj));
  if (!inserted)
    throw std::invalid_argument("cvmfs: duplicate path " + path);
  total_bytes_ += size_bytes;
}

std::optional<FileObject> Repository::lookup(const std::string& path) const {
  const auto it = catalog_.find(path);
  if (it == catalog_.end()) return std::nullopt;
  return it->second;
}

std::vector<FileObject> Repository::files() const {
  std::vector<FileObject> out;
  out.reserve(catalog_.size());
  for (const auto& [_, obj] : catalog_) out.push_back(obj);
  return out;
}

Release::Release(const ReleaseSpec& spec, util::Rng rng) : spec_(spec) {
  if (spec.num_files == 0)
    throw std::invalid_argument("cvmfs: num_files must be > 0");
  if (spec.total_bytes <= 0.0 || spec.working_set_bytes <= 0.0)
    throw std::invalid_argument("cvmfs: byte volumes must be positive");

  // File sizes: lognormal, normalised so the catalog sums to total_bytes.
  std::vector<double> sizes(spec.num_files);
  double sum = 0.0;
  for (auto& s : sizes) {
    s = rng.lognormal(0.0, 1.2);
    sum += s;
  }
  for (auto& s : sizes) s *= spec.total_bytes / sum;

  by_rank_.reserve(spec.num_files);
  weights_.reserve(spec.num_files);
  for (std::size_t i = 0; i < spec.num_files; ++i) {
    char buf[256];
    std::snprintf(buf, sizeof buf, "/cvmfs/cms.cern.ch/%s/lib_%05zu.so",
                  spec.name.c_str(), i);
    repo_.add(buf, sizes[i]);
    by_rank_.push_back(*repo_.lookup(buf));
    weights_.push_back(
        1.0 / std::pow(static_cast<double>(i + 1), spec.popularity_exponent));
  }

  // Calibrate the inclusion probabilities p_r = min(1, c * w_r) so the
  // expected per-task working-set volume equals spec.working_set_bytes
  // (clamped to the full release).  Solved once by bisection.
  const std::size_t n = by_rank_.size();
  const double target = std::min(spec_.working_set_bytes, repo_.total_bytes());
  auto expected_volume = [&](double c) {
    double v = 0.0;
    for (std::size_t r = 0; r < n; ++r)
      v += std::min(1.0, c * weights_[r]) * by_rank_[r].size_bytes;
    return v;
  };
  double lo = 0.0, hi = 1.0;
  while (expected_volume(hi) < target && hi < 1e12) hi *= 2.0;
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = 0.5 * (lo + hi);
    (expected_volume(mid) < target ? lo : hi) = mid;
  }
  inclusion_scale_ = hi;
}

std::vector<FileObject> Release::sample_working_set(util::Rng& rng) const {
  // Every task needs the Zipf head (shared framework libraries, always
  // p=1); the tail is sampled per task.  Tasks therefore overlap heavily in
  // the popular files — the mechanism behind the hot-cache speedup of
  // Figure 5.
  std::vector<FileObject> out;
  for (std::size_t r = 0; r < by_rank_.size(); ++r)
    if (rng.chance(std::min(1.0, inclusion_scale_ * weights_[r])))
      out.push_back(by_rank_[r]);
  return out;
}

}  // namespace lobster::cvmfs

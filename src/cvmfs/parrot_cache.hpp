// parrot_cache.hpp — Parrot's local CVMFS cache, with the three concurrency
// disciplines of paper §4.3 / Figure 6.
//
// When several Parrot instances (one per task slot) run on the same node:
//
//  * Exclusive   — all instances share the default cache directory and must
//                  take a whole-cache write lock to populate it.  While the
//                  cache is cold only the lock holder makes progress
//                  (Figure 6(a)): fetches serialise.
//  * PerInstance — each instance uses its own cache directory
//                  (Figure 6(b)/(c)): full concurrency, but every instance
//                  re-downloads the same popular files, multiplying the
//                  bandwidth demand by the number of slots.
//  * Alien       — the shared "alien cache" (Figure 6(d)/(e)): because CVMFS
//                  is read-only and content addressed, instances can
//                  populate the same cache concurrently with per-object
//                  locking; each object is fetched exactly once per node.
//
// This is a real, thread-safe implementation (used by the wq:: worker
// runtime and by the Figure 6 ablation bench with actual std::threads); the
// DES cost model in lobsim mirrors its fetch-count behaviour at 20k-core
// scale.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "cvmfs/repository.hpp"
#include "util/thread_annotations.hpp"
#include "util/trace.hpp"

namespace lobster::cvmfs {

enum class CacheMode { Exclusive, PerInstance, Alien };

const char* to_string(CacheMode mode);

/// Result of a cache access.
struct AccessResult {
  Digest digest;       ///< content digest (verified against the catalog)
  bool hit = false;    ///< served from cache without fetching
  double bytes_fetched = 0.0;  ///< 0 on hit
};

/// Aggregated cache statistics (atomic: read while threads run).
struct CacheStats {
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> fetches{0};
  std::atomic<std::uint64_t> lock_waits{0};  ///< blocked lock acquisitions
  std::atomic<double> bytes_fetched{0.0};

  void add_bytes(double b) {
    double cur = bytes_fetched.load(std::memory_order_relaxed);
    while (!bytes_fetched.compare_exchange_weak(cur, cur + b,
                                                std::memory_order_relaxed)) {
    }
  }
};

/// The fetcher pulls an object from upstream (squid proxy or the repository
/// itself) and returns its digest.  Implementations may block (HTTP RTT,
/// bandwidth); the cache's locking discipline decides how much of that
/// blocking serialises other instances.
using Fetcher = std::function<Digest(const FileObject&)>;

/// Shared per-node cache state; create one per (simulated) worker node and
/// hand an Instance to each task slot.
class CacheGroup {
 public:
  CacheGroup(CacheMode mode, Fetcher fetcher);

  CacheMode mode() const { return mode_; }
  [[nodiscard]] const CacheStats& stats() const { return stats_; }
  /// Number of distinct objects stored across all cache directories.
  /// (shared_lock is not annotated in libc++, so these bodies are outside
  /// clang's attribute analysis; lobster_lint still checks them.)
  [[nodiscard]] std::size_t stored_objects() const
      LOBSTER_NO_THREAD_SAFETY_ANALYSIS;
  /// Total bytes stored (PerInstance counts duplicates once per instance,
  /// mirroring real disk usage).
  [[nodiscard]] double stored_bytes() const LOBSTER_NO_THREAD_SAFETY_ANALYSIS;

  /// A Parrot instance bound to one task slot.
  class Instance {
   public:
    /// Access `obj` through the cache; fetches on miss according to the
    /// group's locking discipline.  Thread safe across instances.
    AccessResult access(const FileObject& obj);

   private:
    friend class CacheGroup;
    Instance(CacheGroup* group, std::size_t id) : group_(group), id_(id) {}
    CacheGroup* group_;
    std::size_t id_;
  };

  /// Create a new instance (task slot).  Instances may be used from
  /// different threads concurrently.
  Instance make_instance();

  /// Attach the unified counter plane (cvmfs.cache.*).  Optional.
  void bind_counters(util::CounterRegistry& registry);

 private:
  struct Entry {
    Digest digest;
    double bytes = 0.0;
  };
  using Store = std::unordered_map<std::string, Entry>;

  AccessResult access_exclusive(const FileObject& obj)
      LOBSTER_NO_THREAD_SAFETY_ANALYSIS;
  AccessResult access_per_instance(const FileObject& obj, std::size_t id);
  AccessResult access_alien(const FileObject& obj)
      LOBSTER_NO_THREAD_SAFETY_ANALYSIS;

  CacheMode mode_ LOBSTER_NOT_GUARDED(immutable after construction);
  Fetcher fetcher_ LOBSTER_NOT_GUARDED(immutable after construction);
  CacheStats stats_ LOBSTER_NOT_GUARDED(internally atomic);
  util::Counter* ctr_hits_ LOBSTER_NOT_GUARDED(target is atomic) = nullptr;
  util::Counter* ctr_fetches_ LOBSTER_NOT_GUARDED(target is atomic) = nullptr;
  util::Gauge* ctr_bytes_fetched_ LOBSTER_NOT_GUARDED(target is atomic) =
      nullptr;

  // Exclusive + Alien: one shared store.  Exclusive guards it (and the
  // whole fetch) with a single shared_mutex; Alien uses the map mutex only
  // for bookkeeping plus a per-object state for in-flight fetches.
  std::shared_mutex cache_lock_;
  Store shared_store_ LOBSTER_GUARDED_BY(cache_lock_);

  // Alien: per-object fetch coordination.
  struct ObjectState {
    // access_alien holds the per-object lock while taking the shared cache
    // lock to publish a fetched object; see DESIGN.md.
    std::mutex m LOBSTER_ACQUIRED_BEFORE(CacheGroup::cache_lock_);
    std::condition_variable cv;
    bool fetching LOBSTER_GUARDED_BY(m) = false;
    bool present LOBSTER_GUARDED_BY(m) = false;
  };
  std::mutex objects_mutex_;
  std::unordered_map<std::string, std::shared_ptr<ObjectState>> objects_
      LOBSTER_GUARDED_BY(objects_mutex_);

  // PerInstance: one store per instance.
  std::mutex instances_mutex_;
  std::vector<std::unique_ptr<std::pair<std::mutex, Store>>> instance_stores_
      LOBSTER_GUARDED_BY(instances_mutex_);
};

}  // namespace lobster::cvmfs

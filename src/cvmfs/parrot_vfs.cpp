#include "cvmfs/parrot_vfs.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace lobster::cvmfs {

namespace {
bool prefix_matches(const std::string& prefix, const std::string& path) {
  if (path.size() < prefix.size()) return false;
  if (path.compare(0, prefix.size(), prefix) != 0) return false;
  return path.size() == prefix.size() || path[prefix.size()] == '/' ||
         prefix.back() == '/';
}
}  // namespace

std::string object_content(const FileObject& obj, std::uint64_t offset,
                           std::size_t n) {
  // Content is a keystream seeded by the digest: cheap, deterministic,
  // and position-addressable (seeks do not require generating the prefix).
  std::string out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t pos = offset + i;
    std::uint64_t state = obj.digest.hi ^ (obj.digest.lo + pos / 8);
    const std::uint64_t word = util::splitmix64(state);
    out.push_back(static_cast<char>((word >> ((pos % 8) * 8)) & 0xff));
  }
  return out;
}

char ParrotVfs::content_byte(const FileObject& obj, std::uint64_t offset) {
  return object_content(obj, offset, 1)[0];
}

void ParrotVfs::mount_cvmfs(const std::string& prefix, const Repository& repo,
                            CacheGroup::Instance instance) {
  if (prefix.empty() || prefix.front() != '/')
    throw VfsError("vfs: mount prefix must be absolute: " + prefix);
  CvmfsMount mount;
  mount.repo = &repo;
  mount.instance =
      std::make_unique<CacheGroup::Instance>(std::move(instance));
  cvmfs_mounts_[prefix] = std::move(mount);
}

void ParrotVfs::mount_scratch(const std::string& prefix) {
  if (prefix.empty() || prefix.front() != '/')
    throw VfsError("vfs: mount prefix must be absolute: " + prefix);
  scratch_[prefix];  // create the (possibly empty) store
}

const ParrotVfs::CvmfsMount* ParrotVfs::find_cvmfs(const std::string& path,
                                                   std::string* rel) const {
  const CvmfsMount* best = nullptr;
  std::size_t best_len = 0;
  for (const auto& [prefix, mount] : cvmfs_mounts_) {
    if (prefix_matches(prefix, path) && prefix.size() > best_len) {
      best = &mount;
      best_len = prefix.size();
    }
  }
  if (best && rel) *rel = path;  // repository catalogs use full paths
  return best;
}

std::string* ParrotVfs::find_scratch(const std::string& path,
                                     bool create_missing) {
  for (auto& [prefix, files] : scratch_) {
    if (!prefix_matches(prefix, path)) continue;
    const auto it = files.find(path);
    if (it != files.end()) return &it->second;
    if (create_missing) return &files[path];
    return nullptr;
  }
  return nullptr;
}

int ParrotVfs::open(const std::string& path) {
  std::string rel;
  if (const CvmfsMount* mount = find_cvmfs(path, &rel)) {
    const auto obj = mount->repo->lookup(rel);
    if (!obj) throw VfsError("vfs: no such file " + path);
    // Access through the cache: this is where Parrot's interposition pays
    // the fetch (or hits) and where the locking discipline bites.
    const auto res = mount->instance->access(*obj);
    if (!(res.digest == obj->digest))
      throw VfsError("vfs: corrupt cache content for " + path);
    Fd fd;
    fd.object = *obj;
    fd.size = static_cast<std::uint64_t>(obj->size_bytes);
    fds_[next_fd_] = std::move(fd);
    return next_fd_++;
  }
  if (std::string* content = find_scratch(path, false)) {
    Fd fd;
    fd.scratch = content;
    fd.size = content->size();
    fds_[next_fd_] = std::move(fd);
    return next_fd_++;
  }
  throw VfsError("vfs: no such file " + path);
}

int ParrotVfs::create(const std::string& path) {
  if (find_cvmfs(path, nullptr))
    throw VfsError("vfs: read-only file system: " + path);
  std::string* content = find_scratch(path, true);
  if (!content) throw VfsError("vfs: no writable mount for " + path);
  content->clear();
  Fd fd;
  fd.writable = true;
  fd.scratch = content;
  fd.size = 0;
  fds_[next_fd_] = std::move(fd);
  return next_fd_++;
}

std::string ParrotVfs::read(int fd_num, std::size_t count) {
  auto it = fds_.find(fd_num);
  if (it == fds_.end()) throw VfsError("vfs: bad file descriptor");
  Fd& fd = it->second;
  if (fd.offset >= fd.size) return {};
  const std::size_t n = static_cast<std::size_t>(
      std::min<std::uint64_t>(count, fd.size - fd.offset));
  std::string out;
  if (fd.object) {
    out = object_content(*fd.object, fd.offset, n);
  } else {
    out = fd.scratch->substr(static_cast<std::size_t>(fd.offset), n);
  }
  fd.offset += out.size();
  return out;
}

void ParrotVfs::write(int fd_num, const std::string& data) {
  auto it = fds_.find(fd_num);
  if (it == fds_.end()) throw VfsError("vfs: bad file descriptor");
  Fd& fd = it->second;
  if (!fd.writable) throw VfsError("vfs: descriptor not opened for writing");
  fd.scratch->append(data);
  fd.size = fd.scratch->size();
  fd.offset = fd.size;
}

std::uint64_t ParrotVfs::seek(int fd_num, std::uint64_t offset) {
  auto it = fds_.find(fd_num);
  if (it == fds_.end()) throw VfsError("vfs: bad file descriptor");
  Fd& fd = it->second;
  fd.offset = std::min(offset, fd.size);
  return fd.offset;
}

void ParrotVfs::close(int fd_num) {
  if (fds_.erase(fd_num) == 0) throw VfsError("vfs: bad file descriptor");
}

VfsStat ParrotVfs::stat(const std::string& path) {
  std::string rel;
  if (const CvmfsMount* mount = find_cvmfs(path, &rel)) {
    const auto obj = mount->repo->lookup(rel);
    if (!obj) throw VfsError("vfs: no such file " + path);
    return VfsStat{path, static_cast<std::uint64_t>(obj->size_bytes), true};
  }
  if (std::string* content = find_scratch(path, false))
    return VfsStat{path, content->size(), false};
  throw VfsError("vfs: no such file " + path);
}

bool ParrotVfs::exists(const std::string& path) {
  std::string rel;
  if (const CvmfsMount* mount = find_cvmfs(path, &rel))
    return mount->repo->has(rel);
  return find_scratch(path, false) != nullptr;
}

std::vector<std::string> ParrotVfs::listdir(const std::string& prefix) {
  std::vector<std::string> out;
  std::string rel;
  if (const CvmfsMount* mount = find_cvmfs(prefix, &rel)) {
    for (const auto& obj : mount->repo->files())
      if (prefix_matches(prefix, obj.path))
        out.push_back(obj.path.substr(prefix.size() + 1));
  } else {
    for (auto& [mnt, files] : scratch_) {
      if (!prefix_matches(mnt, prefix) && !prefix_matches(prefix, mnt))
        continue;
      for (const auto& [path, _] : files)
        if (prefix_matches(prefix, path))
          out.push_back(path.substr(prefix.size() + 1));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace lobster::cvmfs

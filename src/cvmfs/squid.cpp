#include "cvmfs/squid.hpp"

#include <stdexcept>

namespace lobster::cvmfs {

SquidProxy::SquidProxy(double capacity_bytes, Fetcher upstream)
    : capacity_bytes_(capacity_bytes), upstream_(std::move(upstream)) {
  if (capacity_bytes_ <= 0.0)
    throw std::invalid_argument("SquidProxy: capacity must be positive");
  if (!upstream_) throw std::invalid_argument("SquidProxy: null upstream");
}

Digest SquidProxy::fetch(const FileObject& obj) {
  {
    std::lock_guard lock(mutex_);
    const auto it = cache_.find(obj.path);
    if (it != cache_.end()) {
      touch_locked(obj.path);
      ++hits_;
      bytes_served_ += obj.size_bytes;
      return it->second.digest;
    }
  }
  // Miss: fetch outside the lock (upstream may block); multiple concurrent
  // misses for the same object are possible, like a real squid under
  // thundering-herd load — the second insert is a no-op.
  const Digest d = upstream_(obj);
  {
    std::lock_guard lock(mutex_);
    ++misses_;
    bytes_served_ += obj.size_bytes;
    bytes_upstream_ += obj.size_bytes;
    if (cache_.find(obj.path) == cache_.end()) {
      lru_.push_front(obj.path);
      cache_[obj.path] = Entry{d, obj.size_bytes, lru_.begin()};
      resident_bytes_ += obj.size_bytes;
      evict_locked();
    }
  }
  return d;
}

Fetcher SquidProxy::as_fetcher() {
  return [this](const FileObject& obj) { return fetch(obj); };
}

void SquidProxy::touch_locked(const std::string& path) {
  auto& entry = cache_.at(path);
  lru_.erase(entry.lru_it);
  lru_.push_front(path);
  entry.lru_it = lru_.begin();
}

void SquidProxy::evict_locked() {
  while (resident_bytes_ > capacity_bytes_ && lru_.size() > 1) {
    const std::string& victim = lru_.back();
    const auto it = cache_.find(victim);
    resident_bytes_ -= it->second.bytes;
    cache_.erase(it);
    lru_.pop_back();
  }
}

std::uint64_t SquidProxy::hits() const {
  std::lock_guard lock(mutex_);
  return hits_;
}

std::uint64_t SquidProxy::misses() const {
  std::lock_guard lock(mutex_);
  return misses_;
}

double SquidProxy::bytes_served() const {
  std::lock_guard lock(mutex_);
  return bytes_served_;
}

double SquidProxy::bytes_upstream() const {
  std::lock_guard lock(mutex_);
  return bytes_upstream_;
}

double SquidProxy::resident_bytes() const {
  std::lock_guard lock(mutex_);
  return resident_bytes_;
}

std::size_t SquidProxy::resident_objects() const {
  std::lock_guard lock(mutex_);
  return cache_.size();
}

SquidSim::SquidSim(des::Simulation& sim, const Params& params)
    : sim_(sim),
      params_(params),
      connections_(sim, params.max_connections),
      service_link_(sim, params.service_rate),
      upstream_link_(sim, params.upstream_rate),
      ctr_requests_(&sim.counters().counter("cvmfs.squid.requests")),
      ctr_hits_(&sim.counters().counter("cvmfs.squid.hits")),
      ctr_misses_(&sim.counters().counter("cvmfs.squid.misses")),
      ctr_timeouts_(&sim.counters().counter("cvmfs.squid.timeouts")),
      ctr_bytes_served_(&sim.counters().gauge("cvmfs.squid.bytes_served")),
      ctr_bytes_upstream_(&sim.counters().gauge("cvmfs.squid.bytes_upstream")),
      ctr_bytes_thrashed_(
          &sim.counters().gauge("cvmfs.squid.bytes_thrashed")) {}

bool SquidSim::note_request(const std::string& path) {
  auto [it, inserted] = seen_.emplace(path, true);
  return !inserted;
}

des::Task<double> SquidSim::fetch(double bytes, bool proxy_hit) {
  ++requests_;
  ctr_requests_->add();
  if (proxy_hit)
    ctr_hits_->add();
  else
    ctr_misses_->add();
  const double t0 = sim_.now();
  auto slot = co_await connections_.acquire();
  const double waited = sim_.now() - t0;
  // Timeout model: a client that had to wait longer than connect_timeout
  // for a connection has long since given up; we account the failure when
  // the slot finally frees.  This keeps FIFO admission exact while
  // reproducing the "squid timeout" failure mode of the 20k-core run.
  if (params_.connect_timeout > 0.0 && waited > params_.connect_timeout) {
    ++timeouts_;
    ctr_timeouts_->add();
    slot.release();
    throw TimeoutError();
  }
  co_await sim_.delay(params_.request_latency);
  if (!proxy_hit) {
    co_await upstream_link_.transfer(bytes);
    ctr_bytes_upstream_->add(bytes);
  }
  // Overload thrash (the Figure 5 knee): a request admitted past the knee
  // pays retransmit-inflated service volume.  bytes_served deliberately
  // counts the inflated total — that is what the proxy NIC actually moved.
  double service_bytes = bytes;
  if (params_.thrash > 0.0 && params_.thrash_knee > 0) {
    const std::int64_t over = connections_.in_use() - params_.thrash_knee;
    if (over > 0)
      service_bytes *= 1.0 + params_.thrash * static_cast<double>(over) /
                                 static_cast<double>(params_.thrash_knee);
  }
  // The waste counter ticks at admission, before the inflated transfer
  // drains: the advisor's windowed rate then sees the overload while it is
  // still live, not a transfer-time later.
  if (service_bytes > bytes) ctr_bytes_thrashed_->add(service_bytes - bytes);
  co_await service_link_.transfer(service_bytes);
  ctr_bytes_served_->add(service_bytes);
  co_return sim_.now() - t0;
}

}  // namespace lobster::cvmfs

#include "cvmfs/parrot_cache.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string_view>
#include <utility>
#include <vector>

namespace lobster::cvmfs {

namespace {
/// Fold object sizes in sorted-path order: summing in hash order would make
/// the reported total depend on the unordered_map's bucket layout, and FP
/// addition is not associative.
template <typename Store>
double sum_bytes_ordered(const Store& store) {
  std::vector<std::pair<std::string_view, double>> items;
  items.reserve(store.size());
  for (const auto& [path, e] : store) items.emplace_back(path, e.bytes);
  std::sort(items.begin(), items.end());
  double total = 0.0;
  for (const auto& [path, bytes] : items) total += bytes;
  return total;
}
}  // namespace

const char* to_string(CacheMode mode) {
  switch (mode) {
    case CacheMode::Exclusive: return "exclusive";
    case CacheMode::PerInstance: return "per-instance";
    case CacheMode::Alien: return "alien";
  }
  return "?";
}

CacheGroup::CacheGroup(CacheMode mode, Fetcher fetcher)
    : mode_(mode), fetcher_(std::move(fetcher)) {
  if (!fetcher_) throw std::invalid_argument("CacheGroup: null fetcher");
}

CacheGroup::Instance CacheGroup::make_instance() {
  std::lock_guard lock(instances_mutex_);
  const std::size_t id = instance_stores_.size();
  instance_stores_.push_back(
      std::make_unique<std::pair<std::mutex, Store>>());
  return Instance(this, id);
}

std::size_t CacheGroup::stored_objects() const {
  auto* self = const_cast<CacheGroup*>(this);
  if (mode_ == CacheMode::PerInstance) {
    std::lock_guard lock(self->instances_mutex_);
    std::size_t n = 0;
    for (const auto& store : self->instance_stores_) {
      std::lock_guard slock(store->first);
      n += store->second.size();
    }
    return n;
  }
  std::shared_lock lock(self->cache_lock_);
  return shared_store_.size();
}

double CacheGroup::stored_bytes() const {
  auto* self = const_cast<CacheGroup*>(this);
  double total = 0.0;
  if (mode_ == CacheMode::PerInstance) {
    std::lock_guard lock(self->instances_mutex_);
    for (const auto& store : self->instance_stores_) {
      std::lock_guard slock(store->first);
      total += sum_bytes_ordered(store->second);
    }
    return total;
  }
  std::shared_lock lock(self->cache_lock_);
  return sum_bytes_ordered(shared_store_);
}

void CacheGroup::bind_counters(util::CounterRegistry& registry) {
  ctr_hits_ = &registry.counter("cvmfs.cache.hits");
  ctr_fetches_ = &registry.counter("cvmfs.cache.fetches");
  ctr_bytes_fetched_ = &registry.gauge("cvmfs.cache.bytes_fetched");
}

AccessResult CacheGroup::Instance::access(const FileObject& obj) {
  AccessResult result;
  switch (group_->mode_) {
    case CacheMode::Exclusive:
      result = group_->access_exclusive(obj);
      break;
    case CacheMode::PerInstance:
      result = group_->access_per_instance(obj, id_);
      break;
    case CacheMode::Alien:
      result = group_->access_alien(obj);
      break;
  }
  if (result.hit) {
    util::bump(group_->ctr_hits_);
  } else {
    util::bump(group_->ctr_fetches_);
    util::bump(group_->ctr_bytes_fetched_, result.bytes_fetched);
  }
  return result;
}

AccessResult CacheGroup::access_exclusive(const FileObject& obj) {
  // Fast path: shared read lock, hit if present.
  {
    std::shared_lock lock(cache_lock_);
    const auto it = shared_store_.find(obj.path);
    if (it != shared_store_.end()) {
      stats_.hits.fetch_add(1, std::memory_order_relaxed);
      return {it->second.digest, true, 0.0};
    }
  }
  // Miss: the whole-cache write lock is held for the entire fetch — this is
  // precisely the Figure 6(a) pathology: concurrent cold instances
  // serialise behind one writer.
  std::unique_lock lock(cache_lock_, std::try_to_lock);
  if (!lock.owns_lock()) {
    stats_.lock_waits.fetch_add(1, std::memory_order_relaxed);
    lock.lock();
  }
  const auto it = shared_store_.find(obj.path);
  if (it != shared_store_.end()) {
    // Populated while we waited for the lock.
    stats_.hits.fetch_add(1, std::memory_order_relaxed);
    return {it->second.digest, true, 0.0};
  }
  const Digest d = fetcher_(obj);
  shared_store_.emplace(obj.path, Entry{d, obj.size_bytes});
  stats_.fetches.fetch_add(1, std::memory_order_relaxed);
  stats_.add_bytes(obj.size_bytes);
  return {d, false, obj.size_bytes};
}

AccessResult CacheGroup::access_per_instance(const FileObject& obj,
                                             std::size_t id) {
  std::pair<std::mutex, Store>* store;
  {
    std::lock_guard lock(instances_mutex_);
    store = instance_stores_.at(id).get();
  }
  {
    std::lock_guard lock(store->first);
    const auto it = store->second.find(obj.path);
    if (it != store->second.end()) {
      stats_.hits.fetch_add(1, std::memory_order_relaxed);
      return {it->second.digest, true, 0.0};
    }
  }
  // Fetch outside the map lock: instances never contend with each other,
  // but each one downloads its own copy (duplicate bandwidth).
  const Digest d = fetcher_(obj);
  {
    std::lock_guard lock(store->first);
    store->second.emplace(obj.path, Entry{d, obj.size_bytes});
  }
  stats_.fetches.fetch_add(1, std::memory_order_relaxed);
  stats_.add_bytes(obj.size_bytes);
  return {d, false, obj.size_bytes};
}

AccessResult CacheGroup::access_alien(const FileObject& obj) {
  // Per-object coordination: the first accessor fetches, concurrent
  // accessors of the *same* object wait for it, accessors of different
  // objects proceed in parallel (Figure 6(d)).  Safe because the repository
  // is read-only: an object, once present, never changes.
  std::shared_ptr<ObjectState> state;
  {
    std::lock_guard lock(objects_mutex_);
    auto& slot = objects_[obj.path];
    if (!slot) slot = std::make_shared<ObjectState>();
    state = slot;
  }

  std::unique_lock lock(state->m);
  if (state->present) {
    stats_.hits.fetch_add(1, std::memory_order_relaxed);
    std::shared_lock slock(cache_lock_);
    return {shared_store_.at(obj.path).digest, true, 0.0};
  }
  if (state->fetching) {
    stats_.lock_waits.fetch_add(1, std::memory_order_relaxed);
    state->cv.wait(lock, [&]() LOBSTER_NO_THREAD_SAFETY_ANALYSIS {
      return state->present;
    });
    stats_.hits.fetch_add(1, std::memory_order_relaxed);
    std::shared_lock slock(cache_lock_);
    return {shared_store_.at(obj.path).digest, true, 0.0};
  }
  state->fetching = true;
  lock.unlock();

  const Digest d = fetcher_(obj);

  {
    std::unique_lock wlock(cache_lock_);
    shared_store_.emplace(obj.path, Entry{d, obj.size_bytes});
  }
  stats_.fetches.fetch_add(1, std::memory_order_relaxed);
  stats_.add_bytes(obj.size_bytes);

  lock.lock();
  state->present = true;
  lock.unlock();
  state->cv.notify_all();
  return {d, false, obj.size_bytes};
}

}  // namespace lobster::cvmfs

// parrot_vfs.hpp — the Parrot virtual file system facade.
//
// Paper §4.3: "On these systems we use Parrot which is able to access
// remote CVMFS repositories without mounting them first.  When a CMS
// application is run with Parrot, it intercepts file access system calls
// and translates them as necessary using LibCVMFS.  System call translation
// allows the remote storage system to appear as a local file system without
// requiring root access, recompilation, or changes to the original
// application."
//
// This class is the interposition layer's view: a POSIX-like API
// (open/read/seek/close/stat/listdir) over mount points.  A /cvmfs mount
// resolves through a CacheGroup::Instance (so the three concurrency
// disciplines of Figure 6 apply transparently), and "local" mounts resolve
// to an in-memory scratch file system (the task sandbox).  File content is
// generated deterministically from the object's digest, so reads can be
// verified end to end.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cvmfs/parrot_cache.hpp"
#include "cvmfs/repository.hpp"

namespace lobster::cvmfs {

struct VfsError : std::runtime_error {
  explicit VfsError(const std::string& what) : std::runtime_error(what) {}
};

struct VfsStat {
  std::string path;
  std::uint64_t size = 0;
  bool read_only = false;
};

/// The per-task Parrot instance: mount table + file descriptor table.
class ParrotVfs {
 public:
  ParrotVfs() = default;

  // ---- mounts ---------------------------------------------------------------

  /// Mount a CVMFS repository under `prefix` (e.g. "/cvmfs/cms.cern.ch"),
  /// accessed through the given cache instance.  The instance must outlive
  /// the VFS.
  void mount_cvmfs(const std::string& prefix, const Repository& repo,
                   CacheGroup::Instance instance);
  /// Mount a writable in-memory scratch area under `prefix` (the sandbox).
  void mount_scratch(const std::string& prefix);

  // ---- POSIX-like calls ------------------------------------------------------

  /// Open for reading; returns a file descriptor.  Throws VfsError when the
  /// path does not resolve.
  int open(const std::string& path);
  /// Create/truncate a scratch file for writing; throws on read-only mounts.
  int create(const std::string& path);
  /// Read up to `count` bytes from the descriptor's offset; returns the
  /// bytes read (empty at EOF).
  std::string read(int fd, std::size_t count);
  /// Append to a descriptor opened with create().
  void write(int fd, const std::string& data);
  /// Absolute seek; returns the new offset (clamped to size for reads).
  std::uint64_t seek(int fd, std::uint64_t offset);
  void close(int fd);

  VfsStat stat(const std::string& path);
  bool exists(const std::string& path);
  /// Entries under a directory prefix (names relative to it, sorted).
  std::vector<std::string> listdir(const std::string& prefix);

  std::size_t open_fds() const { return fds_.size(); }

 private:
  struct CvmfsMount {
    const Repository* repo = nullptr;
    std::unique_ptr<CacheGroup::Instance> instance;
  };
  struct Fd {
    bool writable = false;
    std::uint64_t offset = 0;
    // CVMFS-backed file: its object (content generated from digest);
    // scratch file: a pointer into the scratch store.
    std::optional<FileObject> object;
    std::string* scratch = nullptr;
    std::uint64_t size = 0;
  };

  /// Longest-prefix mount resolution.
  const CvmfsMount* find_cvmfs(const std::string& path,
                               std::string* rel) const;
  std::string* find_scratch(const std::string& path, bool create_missing);

  /// Deterministic content byte at `offset` of an object.
  static char content_byte(const FileObject& obj, std::uint64_t offset);

  std::map<std::string, CvmfsMount> cvmfs_mounts_;  // prefix -> mount
  std::map<std::string, std::map<std::string, std::string>> scratch_;
  std::map<int, Fd> fds_;
  int next_fd_ = 3;  // 0/1/2 are stdio, as tradition demands
};

/// Generate the first `n` bytes of an object's canonical content —
/// the same stream ParrotVfs::read returns.  Exposed for verification.
std::string object_content(const FileObject& obj, std::uint64_t offset,
                           std::size_t n);

}  // namespace lobster::cvmfs

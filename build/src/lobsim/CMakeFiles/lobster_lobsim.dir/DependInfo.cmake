
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lobsim/engine.cpp" "src/lobsim/CMakeFiles/lobster_lobsim.dir/engine.cpp.o" "gcc" "src/lobsim/CMakeFiles/lobster_lobsim.dir/engine.cpp.o.d"
  "/root/repo/src/lobsim/global_pool.cpp" "src/lobsim/CMakeFiles/lobster_lobsim.dir/global_pool.cpp.o" "gcc" "src/lobsim/CMakeFiles/lobster_lobsim.dir/global_pool.cpp.o.d"
  "/root/repo/src/lobsim/scenarios.cpp" "src/lobsim/CMakeFiles/lobster_lobsim.dir/scenarios.cpp.o" "gcc" "src/lobsim/CMakeFiles/lobster_lobsim.dir/scenarios.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lobster_util.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/lobster_des.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/lobster_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cvmfs/CMakeFiles/lobster_cvmfs.dir/DependInfo.cmake"
  "/root/repo/build/src/xrootd/CMakeFiles/lobster_xrootd.dir/DependInfo.cmake"
  "/root/repo/build/src/chirp/CMakeFiles/lobster_chirp.dir/DependInfo.cmake"
  "/root/repo/build/src/dbs/CMakeFiles/lobster_dbs.dir/DependInfo.cmake"
  "/root/repo/build/src/wq/CMakeFiles/lobster_wq.dir/DependInfo.cmake"
  "/root/repo/build/src/hdfs/CMakeFiles/lobster_hdfs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

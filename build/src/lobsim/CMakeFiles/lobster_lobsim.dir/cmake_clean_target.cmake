file(REMOVE_RECURSE
  "liblobster_lobsim.a"
)

# Empty dependencies file for lobster_lobsim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/lobster_lobsim.dir/engine.cpp.o"
  "CMakeFiles/lobster_lobsim.dir/engine.cpp.o.d"
  "CMakeFiles/lobster_lobsim.dir/global_pool.cpp.o"
  "CMakeFiles/lobster_lobsim.dir/global_pool.cpp.o.d"
  "CMakeFiles/lobster_lobsim.dir/scenarios.cpp.o"
  "CMakeFiles/lobster_lobsim.dir/scenarios.cpp.o.d"
  "liblobster_lobsim.a"
  "liblobster_lobsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lobster_lobsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "liblobster_wq.a"
)

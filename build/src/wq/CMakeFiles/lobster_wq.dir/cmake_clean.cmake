file(REMOVE_RECURSE
  "CMakeFiles/lobster_wq.dir/foreman.cpp.o"
  "CMakeFiles/lobster_wq.dir/foreman.cpp.o.d"
  "CMakeFiles/lobster_wq.dir/master.cpp.o"
  "CMakeFiles/lobster_wq.dir/master.cpp.o.d"
  "CMakeFiles/lobster_wq.dir/sandbox.cpp.o"
  "CMakeFiles/lobster_wq.dir/sandbox.cpp.o.d"
  "CMakeFiles/lobster_wq.dir/worker.cpp.o"
  "CMakeFiles/lobster_wq.dir/worker.cpp.o.d"
  "liblobster_wq.a"
  "liblobster_wq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lobster_wq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wq/foreman.cpp" "src/wq/CMakeFiles/lobster_wq.dir/foreman.cpp.o" "gcc" "src/wq/CMakeFiles/lobster_wq.dir/foreman.cpp.o.d"
  "/root/repo/src/wq/master.cpp" "src/wq/CMakeFiles/lobster_wq.dir/master.cpp.o" "gcc" "src/wq/CMakeFiles/lobster_wq.dir/master.cpp.o.d"
  "/root/repo/src/wq/sandbox.cpp" "src/wq/CMakeFiles/lobster_wq.dir/sandbox.cpp.o" "gcc" "src/wq/CMakeFiles/lobster_wq.dir/sandbox.cpp.o.d"
  "/root/repo/src/wq/worker.cpp" "src/wq/CMakeFiles/lobster_wq.dir/worker.cpp.o" "gcc" "src/wq/CMakeFiles/lobster_wq.dir/worker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lobster_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for lobster_wq.
# This may be replaced when dependencies are built.

# Empty dependencies file for lobster_dbs.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dbs/dbs.cpp" "src/dbs/CMakeFiles/lobster_dbs.dir/dbs.cpp.o" "gcc" "src/dbs/CMakeFiles/lobster_dbs.dir/dbs.cpp.o.d"
  "/root/repo/src/dbs/publication.cpp" "src/dbs/CMakeFiles/lobster_dbs.dir/publication.cpp.o" "gcc" "src/dbs/CMakeFiles/lobster_dbs.dir/publication.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lobster_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/lobster_dbs.dir/dbs.cpp.o"
  "CMakeFiles/lobster_dbs.dir/dbs.cpp.o.d"
  "CMakeFiles/lobster_dbs.dir/publication.cpp.o"
  "CMakeFiles/lobster_dbs.dir/publication.cpp.o.d"
  "liblobster_dbs.a"
  "liblobster_dbs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lobster_dbs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "liblobster_dbs.a"
)

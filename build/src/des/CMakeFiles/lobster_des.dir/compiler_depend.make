# Empty compiler generated dependencies file for lobster_des.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/lobster_des.dir/bandwidth.cpp.o"
  "CMakeFiles/lobster_des.dir/bandwidth.cpp.o.d"
  "CMakeFiles/lobster_des.dir/resource.cpp.o"
  "CMakeFiles/lobster_des.dir/resource.cpp.o.d"
  "CMakeFiles/lobster_des.dir/simulation.cpp.o"
  "CMakeFiles/lobster_des.dir/simulation.cpp.o.d"
  "liblobster_des.a"
  "liblobster_des.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lobster_des.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "liblobster_des.a"
)

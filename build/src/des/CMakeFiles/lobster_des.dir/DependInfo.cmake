
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/des/bandwidth.cpp" "src/des/CMakeFiles/lobster_des.dir/bandwidth.cpp.o" "gcc" "src/des/CMakeFiles/lobster_des.dir/bandwidth.cpp.o.d"
  "/root/repo/src/des/resource.cpp" "src/des/CMakeFiles/lobster_des.dir/resource.cpp.o" "gcc" "src/des/CMakeFiles/lobster_des.dir/resource.cpp.o.d"
  "/root/repo/src/des/simulation.cpp" "src/des/CMakeFiles/lobster_des.dir/simulation.cpp.o" "gcc" "src/des/CMakeFiles/lobster_des.dir/simulation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lobster_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/lobster_util.dir/config.cpp.o"
  "CMakeFiles/lobster_util.dir/config.cpp.o.d"
  "CMakeFiles/lobster_util.dir/histogram.cpp.o"
  "CMakeFiles/lobster_util.dir/histogram.cpp.o.d"
  "CMakeFiles/lobster_util.dir/log.cpp.o"
  "CMakeFiles/lobster_util.dir/log.cpp.o.d"
  "CMakeFiles/lobster_util.dir/rng.cpp.o"
  "CMakeFiles/lobster_util.dir/rng.cpp.o.d"
  "CMakeFiles/lobster_util.dir/stats.cpp.o"
  "CMakeFiles/lobster_util.dir/stats.cpp.o.d"
  "CMakeFiles/lobster_util.dir/table.cpp.o"
  "CMakeFiles/lobster_util.dir/table.cpp.o.d"
  "CMakeFiles/lobster_util.dir/thread_pool.cpp.o"
  "CMakeFiles/lobster_util.dir/thread_pool.cpp.o.d"
  "CMakeFiles/lobster_util.dir/units.cpp.o"
  "CMakeFiles/lobster_util.dir/units.cpp.o.d"
  "liblobster_util.a"
  "liblobster_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lobster_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

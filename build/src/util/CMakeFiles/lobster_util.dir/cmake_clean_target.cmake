file(REMOVE_RECURSE
  "liblobster_util.a"
)

# Empty compiler generated dependencies file for lobster_util.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "liblobster_xrootd.a"
)

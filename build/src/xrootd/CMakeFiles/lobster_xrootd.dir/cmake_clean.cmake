file(REMOVE_RECURSE
  "CMakeFiles/lobster_xrootd.dir/federation.cpp.o"
  "CMakeFiles/lobster_xrootd.dir/federation.cpp.o.d"
  "liblobster_xrootd.a"
  "liblobster_xrootd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lobster_xrootd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

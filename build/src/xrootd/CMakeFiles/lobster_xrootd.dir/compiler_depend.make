# Empty compiler generated dependencies file for lobster_xrootd.
# This may be replaced when dependencies are built.

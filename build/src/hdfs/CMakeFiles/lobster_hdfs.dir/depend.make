# Empty dependencies file for lobster_hdfs.
# This may be replaced when dependencies are built.

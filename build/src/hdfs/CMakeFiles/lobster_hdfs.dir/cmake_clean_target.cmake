file(REMOVE_RECURSE
  "liblobster_hdfs.a"
)

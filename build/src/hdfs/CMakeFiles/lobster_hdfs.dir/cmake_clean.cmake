file(REMOVE_RECURSE
  "CMakeFiles/lobster_hdfs.dir/hdfs.cpp.o"
  "CMakeFiles/lobster_hdfs.dir/hdfs.cpp.o.d"
  "liblobster_hdfs.a"
  "liblobster_hdfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lobster_hdfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

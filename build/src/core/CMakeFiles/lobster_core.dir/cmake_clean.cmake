file(REMOVE_RECURSE
  "CMakeFiles/lobster_core.dir/config.cpp.o"
  "CMakeFiles/lobster_core.dir/config.cpp.o.d"
  "CMakeFiles/lobster_core.dir/db.cpp.o"
  "CMakeFiles/lobster_core.dir/db.cpp.o.d"
  "CMakeFiles/lobster_core.dir/merge.cpp.o"
  "CMakeFiles/lobster_core.dir/merge.cpp.o.d"
  "CMakeFiles/lobster_core.dir/monitor.cpp.o"
  "CMakeFiles/lobster_core.dir/monitor.cpp.o.d"
  "CMakeFiles/lobster_core.dir/scheduler.cpp.o"
  "CMakeFiles/lobster_core.dir/scheduler.cpp.o.d"
  "CMakeFiles/lobster_core.dir/task_size_model.cpp.o"
  "CMakeFiles/lobster_core.dir/task_size_model.cpp.o.d"
  "CMakeFiles/lobster_core.dir/workflow.cpp.o"
  "CMakeFiles/lobster_core.dir/workflow.cpp.o.d"
  "CMakeFiles/lobster_core.dir/wrapper.cpp.o"
  "CMakeFiles/lobster_core.dir/wrapper.cpp.o.d"
  "liblobster_core.a"
  "liblobster_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lobster_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/config.cpp" "src/core/CMakeFiles/lobster_core.dir/config.cpp.o" "gcc" "src/core/CMakeFiles/lobster_core.dir/config.cpp.o.d"
  "/root/repo/src/core/db.cpp" "src/core/CMakeFiles/lobster_core.dir/db.cpp.o" "gcc" "src/core/CMakeFiles/lobster_core.dir/db.cpp.o.d"
  "/root/repo/src/core/merge.cpp" "src/core/CMakeFiles/lobster_core.dir/merge.cpp.o" "gcc" "src/core/CMakeFiles/lobster_core.dir/merge.cpp.o.d"
  "/root/repo/src/core/monitor.cpp" "src/core/CMakeFiles/lobster_core.dir/monitor.cpp.o" "gcc" "src/core/CMakeFiles/lobster_core.dir/monitor.cpp.o.d"
  "/root/repo/src/core/scheduler.cpp" "src/core/CMakeFiles/lobster_core.dir/scheduler.cpp.o" "gcc" "src/core/CMakeFiles/lobster_core.dir/scheduler.cpp.o.d"
  "/root/repo/src/core/task_size_model.cpp" "src/core/CMakeFiles/lobster_core.dir/task_size_model.cpp.o" "gcc" "src/core/CMakeFiles/lobster_core.dir/task_size_model.cpp.o.d"
  "/root/repo/src/core/workflow.cpp" "src/core/CMakeFiles/lobster_core.dir/workflow.cpp.o" "gcc" "src/core/CMakeFiles/lobster_core.dir/workflow.cpp.o.d"
  "/root/repo/src/core/wrapper.cpp" "src/core/CMakeFiles/lobster_core.dir/wrapper.cpp.o" "gcc" "src/core/CMakeFiles/lobster_core.dir/wrapper.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lobster_util.dir/DependInfo.cmake"
  "/root/repo/build/src/dbs/CMakeFiles/lobster_dbs.dir/DependInfo.cmake"
  "/root/repo/build/src/wq/CMakeFiles/lobster_wq.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

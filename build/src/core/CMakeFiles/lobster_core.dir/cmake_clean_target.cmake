file(REMOVE_RECURSE
  "liblobster_core.a"
)

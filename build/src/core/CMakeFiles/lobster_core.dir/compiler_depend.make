# Empty compiler generated dependencies file for lobster_core.
# This may be replaced when dependencies are built.

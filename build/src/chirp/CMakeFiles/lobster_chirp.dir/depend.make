# Empty dependencies file for lobster_chirp.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/lobster_chirp.dir/chirp.cpp.o"
  "CMakeFiles/lobster_chirp.dir/chirp.cpp.o.d"
  "CMakeFiles/lobster_chirp.dir/hdfs_backend.cpp.o"
  "CMakeFiles/lobster_chirp.dir/hdfs_backend.cpp.o.d"
  "liblobster_chirp.a"
  "liblobster_chirp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lobster_chirp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

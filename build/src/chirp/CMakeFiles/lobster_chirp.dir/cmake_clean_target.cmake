file(REMOVE_RECURSE
  "liblobster_chirp.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chirp/chirp.cpp" "src/chirp/CMakeFiles/lobster_chirp.dir/chirp.cpp.o" "gcc" "src/chirp/CMakeFiles/lobster_chirp.dir/chirp.cpp.o.d"
  "/root/repo/src/chirp/hdfs_backend.cpp" "src/chirp/CMakeFiles/lobster_chirp.dir/hdfs_backend.cpp.o" "gcc" "src/chirp/CMakeFiles/lobster_chirp.dir/hdfs_backend.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lobster_util.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/lobster_des.dir/DependInfo.cmake"
  "/root/repo/build/src/hdfs/CMakeFiles/lobster_hdfs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

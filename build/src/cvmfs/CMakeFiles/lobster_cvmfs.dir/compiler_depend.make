# Empty compiler generated dependencies file for lobster_cvmfs.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/lobster_cvmfs.dir/parrot_cache.cpp.o"
  "CMakeFiles/lobster_cvmfs.dir/parrot_cache.cpp.o.d"
  "CMakeFiles/lobster_cvmfs.dir/parrot_vfs.cpp.o"
  "CMakeFiles/lobster_cvmfs.dir/parrot_vfs.cpp.o.d"
  "CMakeFiles/lobster_cvmfs.dir/repository.cpp.o"
  "CMakeFiles/lobster_cvmfs.dir/repository.cpp.o.d"
  "CMakeFiles/lobster_cvmfs.dir/squid.cpp.o"
  "CMakeFiles/lobster_cvmfs.dir/squid.cpp.o.d"
  "liblobster_cvmfs.a"
  "liblobster_cvmfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lobster_cvmfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cvmfs/parrot_cache.cpp" "src/cvmfs/CMakeFiles/lobster_cvmfs.dir/parrot_cache.cpp.o" "gcc" "src/cvmfs/CMakeFiles/lobster_cvmfs.dir/parrot_cache.cpp.o.d"
  "/root/repo/src/cvmfs/parrot_vfs.cpp" "src/cvmfs/CMakeFiles/lobster_cvmfs.dir/parrot_vfs.cpp.o" "gcc" "src/cvmfs/CMakeFiles/lobster_cvmfs.dir/parrot_vfs.cpp.o.d"
  "/root/repo/src/cvmfs/repository.cpp" "src/cvmfs/CMakeFiles/lobster_cvmfs.dir/repository.cpp.o" "gcc" "src/cvmfs/CMakeFiles/lobster_cvmfs.dir/repository.cpp.o.d"
  "/root/repo/src/cvmfs/squid.cpp" "src/cvmfs/CMakeFiles/lobster_cvmfs.dir/squid.cpp.o" "gcc" "src/cvmfs/CMakeFiles/lobster_cvmfs.dir/squid.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lobster_util.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/lobster_des.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "liblobster_cvmfs.a"
)

# Empty compiler generated dependencies file for lobster_frontier.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/lobster_frontier.dir/frontier.cpp.o"
  "CMakeFiles/lobster_frontier.dir/frontier.cpp.o.d"
  "liblobster_frontier.a"
  "liblobster_frontier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lobster_frontier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "liblobster_frontier.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/fig02_eviction_probability.dir/fig02_eviction_probability.cpp.o"
  "CMakeFiles/fig02_eviction_probability.dir/fig02_eviction_probability.cpp.o.d"
  "fig02_eviction_probability"
  "fig02_eviction_probability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_eviction_probability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig02_eviction_probability.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for micro_cache.
# This may be replaced when dependencies are built.

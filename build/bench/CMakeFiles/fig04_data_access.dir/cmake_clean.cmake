file(REMOVE_RECURSE
  "CMakeFiles/fig04_data_access.dir/fig04_data_access.cpp.o"
  "CMakeFiles/fig04_data_access.dir/fig04_data_access.cpp.o.d"
  "fig04_data_access"
  "fig04_data_access.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_data_access.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

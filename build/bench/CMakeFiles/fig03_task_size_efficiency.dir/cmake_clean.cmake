file(REMOVE_RECURSE
  "CMakeFiles/fig03_task_size_efficiency.dir/fig03_task_size_efficiency.cpp.o"
  "CMakeFiles/fig03_task_size_efficiency.dir/fig03_task_size_efficiency.cpp.o.d"
  "fig03_task_size_efficiency"
  "fig03_task_size_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_task_size_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

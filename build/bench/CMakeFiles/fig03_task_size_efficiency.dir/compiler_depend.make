# Empty compiler generated dependencies file for fig03_task_size_efficiency.
# This may be replaced when dependencies are built.

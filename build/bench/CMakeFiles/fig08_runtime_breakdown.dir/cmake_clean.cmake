file(REMOVE_RECURSE
  "CMakeFiles/fig08_runtime_breakdown.dir/fig08_runtime_breakdown.cpp.o"
  "CMakeFiles/fig08_runtime_breakdown.dir/fig08_runtime_breakdown.cpp.o.d"
  "fig08_runtime_breakdown"
  "fig08_runtime_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_runtime_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig08_runtime_breakdown.
# This may be replaced when dependencies are built.

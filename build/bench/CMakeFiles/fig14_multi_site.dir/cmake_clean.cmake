file(REMOVE_RECURSE
  "CMakeFiles/fig14_multi_site.dir/fig14_multi_site.cpp.o"
  "CMakeFiles/fig14_multi_site.dir/fig14_multi_site.cpp.o.d"
  "fig14_multi_site"
  "fig14_multi_site.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_multi_site.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

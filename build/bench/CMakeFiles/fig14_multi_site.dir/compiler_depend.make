# Empty compiler generated dependencies file for fig14_multi_site.
# This may be replaced when dependencies are built.

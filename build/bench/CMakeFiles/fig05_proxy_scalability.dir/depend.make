# Empty dependencies file for fig05_proxy_scalability.
# This may be replaced when dependencies are built.

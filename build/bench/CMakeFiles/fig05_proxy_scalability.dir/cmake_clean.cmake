file(REMOVE_RECURSE
  "CMakeFiles/fig05_proxy_scalability.dir/fig05_proxy_scalability.cpp.o"
  "CMakeFiles/fig05_proxy_scalability.dir/fig05_proxy_scalability.cpp.o.d"
  "fig05_proxy_scalability"
  "fig05_proxy_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_proxy_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

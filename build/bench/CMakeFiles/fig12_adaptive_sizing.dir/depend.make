# Empty dependencies file for fig12_adaptive_sizing.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig12_adaptive_sizing.dir/fig12_adaptive_sizing.cpp.o"
  "CMakeFiles/fig12_adaptive_sizing.dir/fig12_adaptive_sizing.cpp.o.d"
  "fig12_adaptive_sizing"
  "fig12_adaptive_sizing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_adaptive_sizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

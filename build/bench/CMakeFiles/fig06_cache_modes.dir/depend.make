# Empty dependencies file for fig06_cache_modes.
# This may be replaced when dependencies are built.

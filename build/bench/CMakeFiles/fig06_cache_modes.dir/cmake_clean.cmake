file(REMOVE_RECURSE
  "CMakeFiles/fig06_cache_modes.dir/fig06_cache_modes.cpp.o"
  "CMakeFiles/fig06_cache_modes.dir/fig06_cache_modes.cpp.o.d"
  "fig06_cache_modes"
  "fig06_cache_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_cache_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig11_simulation_timeline.dir/fig11_simulation_timeline.cpp.o"
  "CMakeFiles/fig11_simulation_timeline.dir/fig11_simulation_timeline.cpp.o.d"
  "fig11_simulation_timeline"
  "fig11_simulation_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_simulation_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

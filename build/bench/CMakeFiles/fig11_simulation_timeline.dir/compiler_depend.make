# Empty compiler generated dependencies file for fig11_simulation_timeline.
# This may be replaced when dependencies are built.

# Empty dependencies file for fig10_processing_timeline.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig10_processing_timeline.dir/fig10_processing_timeline.cpp.o"
  "CMakeFiles/fig10_processing_timeline.dir/fig10_processing_timeline.cpp.o.d"
  "fig10_processing_timeline"
  "fig10_processing_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_processing_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

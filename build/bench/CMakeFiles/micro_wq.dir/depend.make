# Empty dependencies file for micro_wq.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/micro_wq.dir/micro_wq.cpp.o"
  "CMakeFiles/micro_wq.dir/micro_wq.cpp.o.d"
  "micro_wq"
  "micro_wq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_wq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig07_merging_modes.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig07_merging_modes.dir/fig07_merging_modes.cpp.o"
  "CMakeFiles/fig07_merging_modes.dir/fig07_merging_modes.cpp.o.d"
  "fig07_merging_modes"
  "fig07_merging_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_merging_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

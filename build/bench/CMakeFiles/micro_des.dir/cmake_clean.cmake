file(REMOVE_RECURSE
  "CMakeFiles/micro_des.dir/micro_des.cpp.o"
  "CMakeFiles/micro_des.dir/micro_des.cpp.o.d"
  "micro_des"
  "micro_des.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_des.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

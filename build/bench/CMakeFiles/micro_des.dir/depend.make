# Empty dependencies file for micro_des.
# This may be replaced when dependencies are built.

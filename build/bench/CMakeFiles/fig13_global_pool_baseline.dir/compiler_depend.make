# Empty compiler generated dependencies file for fig13_global_pool_baseline.
# This may be replaced when dependencies are built.

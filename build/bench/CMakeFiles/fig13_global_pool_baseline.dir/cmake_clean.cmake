file(REMOVE_RECURSE
  "CMakeFiles/fig13_global_pool_baseline.dir/fig13_global_pool_baseline.cpp.o"
  "CMakeFiles/fig13_global_pool_baseline.dir/fig13_global_pool_baseline.cpp.o.d"
  "fig13_global_pool_baseline"
  "fig13_global_pool_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_global_pool_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

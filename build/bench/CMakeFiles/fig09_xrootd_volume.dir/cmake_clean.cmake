file(REMOVE_RECURSE
  "CMakeFiles/fig09_xrootd_volume.dir/fig09_xrootd_volume.cpp.o"
  "CMakeFiles/fig09_xrootd_volume.dir/fig09_xrootd_volume.cpp.o.d"
  "fig09_xrootd_volume"
  "fig09_xrootd_volume.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_xrootd_volume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig09_xrootd_volume.
# This may be replaced when dependencies are built.

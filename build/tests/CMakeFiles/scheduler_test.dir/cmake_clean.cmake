file(REMOVE_RECURSE
  "CMakeFiles/scheduler_test.dir/scheduler_test.cpp.o"
  "CMakeFiles/scheduler_test.dir/scheduler_test.cpp.o.d"
  "scheduler_test"
  "scheduler_test.pdb"
  "scheduler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/properties_test.dir/properties_test.cpp.o"
  "CMakeFiles/properties_test.dir/properties_test.cpp.o.d"
  "properties_test"
  "properties_test.pdb"
  "properties_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for chirp_test.
# This may be replaced when dependencies are built.

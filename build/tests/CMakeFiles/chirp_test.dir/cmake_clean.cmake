file(REMOVE_RECURSE
  "CMakeFiles/chirp_test.dir/chirp_test.cpp.o"
  "CMakeFiles/chirp_test.dir/chirp_test.cpp.o.d"
  "chirp_test"
  "chirp_test.pdb"
  "chirp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chirp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

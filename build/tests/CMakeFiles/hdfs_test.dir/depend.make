# Empty dependencies file for hdfs_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/publication_test.dir/publication_test.cpp.o"
  "CMakeFiles/publication_test.dir/publication_test.cpp.o.d"
  "publication_test"
  "publication_test.pdb"
  "publication_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/publication_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

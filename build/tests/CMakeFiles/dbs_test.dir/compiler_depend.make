# Empty compiler generated dependencies file for dbs_test.
# This may be replaced when dependencies are built.

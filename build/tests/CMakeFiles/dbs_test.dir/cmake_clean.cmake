file(REMOVE_RECURSE
  "CMakeFiles/dbs_test.dir/dbs_test.cpp.o"
  "CMakeFiles/dbs_test.dir/dbs_test.cpp.o.d"
  "dbs_test"
  "dbs_test.pdb"
  "dbs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/parrot_vfs_test.dir/parrot_vfs_test.cpp.o"
  "CMakeFiles/parrot_vfs_test.dir/parrot_vfs_test.cpp.o.d"
  "parrot_vfs_test"
  "parrot_vfs_test.pdb"
  "parrot_vfs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parrot_vfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

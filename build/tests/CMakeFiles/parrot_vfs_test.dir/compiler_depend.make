# Empty compiler generated dependencies file for parrot_vfs_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/cvmfs_test.dir/cvmfs_test.cpp.o"
  "CMakeFiles/cvmfs_test.dir/cvmfs_test.cpp.o.d"
  "cvmfs_test"
  "cvmfs_test.pdb"
  "cvmfs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cvmfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for cvmfs_test.
# This may be replaced when dependencies are built.

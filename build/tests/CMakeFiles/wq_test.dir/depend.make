# Empty dependencies file for wq_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/wq_test.dir/wq_test.cpp.o"
  "CMakeFiles/wq_test.dir/wq_test.cpp.o.d"
  "wq_test"
  "wq_test.pdb"
  "wq_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

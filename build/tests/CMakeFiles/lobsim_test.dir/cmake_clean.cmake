file(REMOVE_RECURSE
  "CMakeFiles/lobsim_test.dir/lobsim_test.cpp.o"
  "CMakeFiles/lobsim_test.dir/lobsim_test.cpp.o.d"
  "lobsim_test"
  "lobsim_test.pdb"
  "lobsim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lobsim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

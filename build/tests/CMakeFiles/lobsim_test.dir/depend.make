# Empty dependencies file for lobsim_test.
# This may be replaced when dependencies are built.

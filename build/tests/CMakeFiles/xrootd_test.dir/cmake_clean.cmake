file(REMOVE_RECURSE
  "CMakeFiles/xrootd_test.dir/xrootd_test.cpp.o"
  "CMakeFiles/xrootd_test.dir/xrootd_test.cpp.o.d"
  "xrootd_test"
  "xrootd_test.pdb"
  "xrootd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xrootd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

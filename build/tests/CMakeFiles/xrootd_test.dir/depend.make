# Empty dependencies file for xrootd_test.
# This may be replaced when dependencies are built.

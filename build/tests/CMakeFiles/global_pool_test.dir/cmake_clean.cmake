file(REMOVE_RECURSE
  "CMakeFiles/global_pool_test.dir/global_pool_test.cpp.o"
  "CMakeFiles/global_pool_test.dir/global_pool_test.cpp.o.d"
  "global_pool_test"
  "global_pool_test.pdb"
  "global_pool_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/global_pool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

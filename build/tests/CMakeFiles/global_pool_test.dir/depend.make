# Empty dependencies file for global_pool_test.
# This may be replaced when dependencies are built.

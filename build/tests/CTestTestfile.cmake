# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/des_test[1]_include.cmake")
include("/root/repo/build/tests/dbs_test[1]_include.cmake")
include("/root/repo/build/tests/cvmfs_test[1]_include.cmake")
include("/root/repo/build/tests/xrootd_test[1]_include.cmake")
include("/root/repo/build/tests/chirp_test[1]_include.cmake")
include("/root/repo/build/tests/hdfs_test[1]_include.cmake")
include("/root/repo/build/tests/wq_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/monitor_test[1]_include.cmake")
include("/root/repo/build/tests/scheduler_test[1]_include.cmake")
include("/root/repo/build/tests/lobsim_test[1]_include.cmake")
include("/root/repo/build/tests/sandbox_test[1]_include.cmake")
include("/root/repo/build/tests/parrot_vfs_test[1]_include.cmake")
include("/root/repo/build/tests/frontier_test[1]_include.cmake")
include("/root/repo/build/tests/publication_test[1]_include.cmake")
include("/root/repo/build/tests/global_pool_test[1]_include.cmake")
include("/root/repo/build/tests/properties_test[1]_include.cmake")

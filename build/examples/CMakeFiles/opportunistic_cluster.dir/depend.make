# Empty dependencies file for opportunistic_cluster.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/opportunistic_cluster.dir/opportunistic_cluster.cpp.o"
  "CMakeFiles/opportunistic_cluster.dir/opportunistic_cluster.cpp.o.d"
  "opportunistic_cluster"
  "opportunistic_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opportunistic_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for merge_pipeline.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/merge_pipeline.dir/merge_pipeline.cpp.o"
  "CMakeFiles/merge_pipeline.dir/merge_pipeline.cpp.o.d"
  "merge_pipeline"
  "merge_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merge_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

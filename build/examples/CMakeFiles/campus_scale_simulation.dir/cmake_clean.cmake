file(REMOVE_RECURSE
  "CMakeFiles/campus_scale_simulation.dir/campus_scale_simulation.cpp.o"
  "CMakeFiles/campus_scale_simulation.dir/campus_scale_simulation.cpp.o.d"
  "campus_scale_simulation"
  "campus_scale_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campus_scale_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for campus_scale_simulation.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for lobster_report.
# This may be replaced when dependencies are built.

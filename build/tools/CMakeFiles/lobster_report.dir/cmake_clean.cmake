file(REMOVE_RECURSE
  "CMakeFiles/lobster_report.dir/lobster_report.cpp.o"
  "CMakeFiles/lobster_report.dir/lobster_report.cpp.o.d"
  "lobster_report"
  "lobster_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lobster_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/lobster_sim.dir/lobster_sim.cpp.o"
  "CMakeFiles/lobster_sim.dir/lobster_sim.cpp.o.d"
  "lobster_sim"
  "lobster_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lobster_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

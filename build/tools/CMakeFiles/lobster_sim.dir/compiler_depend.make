# Empty compiler generated dependencies file for lobster_sim.
# This may be replaced when dependencies are built.
